//! Criterion microbenchmarks and design-choice ablations.
//!
//! * `dtlock` — the Delegation Ticket Lock against a plain ticket lock and
//!   `parking_lot::Mutex` under producer/consumer contention (§3.4's
//!   "state-of-the-art performance" claim for the scheduler lock).
//! * `shmem_alloc` — the in-segment SLAB allocator against the system
//!   allocator, including the cross-process free path (§3.5's
//!   "competitive with other memory allocators").
//! * `task_lifecycle` — `nosv_create`+`submit`+run+`destroy` end-to-end
//!   latency (the overhead Fig. 5's small-granularity points stress).
//! * `quantum` — scheduler ablation: context-switch count as a function of
//!   the process quantum (the §3.4 fairness/locality trade-off).
//!
//! Run with: `cargo bench -p bench --bench micro`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nosv_shmem::{SegmentConfig, ShmSegment};
use nosv_sync::{Acquired, DtLock, TicketLock};

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("dtlock");
    g.sample_size(20);

    // Uncontended acquire/release round-trips.
    let dt: DtLock<u64, u64> = DtLock::new(0, 8);
    g.bench_function("dtlock_uncontended", |b| {
        b.iter(|| match dt.acquire(0) {
            Acquired::Holder(mut guard) => {
                *guard += 1;
            }
            Acquired::Served(_) => unreachable!(),
        })
    });

    let ticket = TicketLock::new(0u64);
    g.bench_function("ticket_uncontended", |b| {
        b.iter(|| {
            *ticket.lock() += 1;
        })
    });

    let mutex = parking_lot::Mutex::new(0u64);
    g.bench_function("parking_lot_uncontended", |b| {
        b.iter(|| {
            *mutex.lock() += 1;
        })
    });

    // Contended: 3 threads hammer a shared counter through each lock.
    g.bench_function("dtlock_contended_3t", |b| {
        b.iter_custom(|iters| {
            let lock: Arc<DtLock<u64, u64>> = Arc::new(DtLock::new(0, 8));
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let lock = Arc::clone(&lock);
                    s.spawn(move || {
                        for _ in 0..iters {
                            match lock.acquire(0) {
                                Acquired::Holder(mut g) => *g += 1,
                                Acquired::Served(_) => {}
                            }
                        }
                    });
                }
            });
            start.elapsed()
        })
    });
    g.bench_function("ticket_contended_3t", |b| {
        b.iter_custom(|iters| {
            let lock = Arc::new(TicketLock::new(0u64));
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let lock = Arc::clone(&lock);
                    s.spawn(move || {
                        for _ in 0..iters {
                            *lock.lock() += 1;
                        }
                    });
                }
            });
            start.elapsed()
        })
    });
    g.finish();
}

fn bench_shmem_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("shmem_alloc");
    g.sample_size(20);
    let seg = ShmSegment::create(SegmentConfig {
        size: 32 * 1024 * 1024,
        max_cpus: 4,
    });
    for size in [64usize, 512, 4096] {
        g.bench_with_input(BenchmarkId::new("slab", size), &size, |b, &size| {
            b.iter(|| {
                let off = seg.alloc(size, 0).expect("space");
                seg.free(off, 0);
            })
        });
        g.bench_with_input(BenchmarkId::new("system", size), &size, |b, &size| {
            b.iter(|| {
                let v = vec![0u8; size];
                std::hint::black_box(&v);
            })
        });
    }
    // Cross-"process" free: allocated on cpu 0 / freed through another
    // mapping on cpu 3 — the property ordinary allocators lack.
    let seg2 = seg.clone();
    g.bench_function("slab_cross_process_free", |b| {
        b.iter(|| {
            let off = seg.alloc(256, 0).expect("space");
            seg2.free(off, 3);
        })
    });
    g.finish();
}

fn bench_task_lifecycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_lifecycle");
    g.sample_size(10);
    let rt = nosv::Runtime::new(nosv::NosvConfig {
        cpus: 2,
        ..Default::default()
    });
    let app = rt.attach("bench");
    g.bench_function("create_submit_run_destroy", |b| {
        b.iter(|| {
            let t = app.create_task(|_| {});
            t.submit();
            t.wait();
            t.destroy();
        })
    });
    g.bench_function("create_destroy_only", |b| {
        b.iter(|| {
            let t = app.create_task(|_| {});
            t.destroy();
        })
    });
    g.finish();
    drop(app);
    rt.shutdown();
}

fn bench_quantum_ablation(c: &mut Criterion) {
    use simnode::{AffinityMode, NodeSpec, RuntimeMode, SimOptions};
    use workloads::{benchmark, Benchmark};

    let mut g = c.benchmark_group("quantum_ablation");
    g.sample_size(10);
    let node = NodeSpec::amd_rome();
    let apps = vec![
        benchmark(Benchmark::Hpccg, 0.02),
        benchmark(Benchmark::Nbody, 0.02),
    ];
    println!("\n-- ablation: process quantum vs cross-app switches (co-execution) --");
    for quantum_ms in [1u64, 5, 20, 100] {
        let r = simnode::run_simulation(
            &node,
            &apps,
            &RuntimeMode::Nosv {
                quantum_ns: quantum_ms * 1_000_000,
                affinity: AffinityMode::Ignore,
            },
            &SimOptions::default(),
        );
        println!(
            "   quantum {quantum_ms:>4} ms: makespan {:.3} s, cross-app switches {}, quantum switches {}",
            r.makespan_ns as f64 / 1e9,
            r.stats.cross_app_switches,
            r.stats.quantum_switches
        );
    }
    // Also expose one configuration as a criterion measurement.
    g.bench_function("nosv_sim_quantum20ms", |b| {
        b.iter(|| {
            simnode::run_simulation(
                &node,
                &apps,
                &RuntimeMode::Nosv {
                    quantum_ns: 20_000_000,
                    affinity: AffinityMode::Ignore,
                },
                &SimOptions::default(),
            )
            .makespan_ns
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_locks,
    bench_shmem_alloc,
    bench_task_lifecycle,
    bench_quantum_ablation
);
criterion_main!(benches);
