//! Scheduler submit+dispatch throughput: lock-free rings vs locked submit.
//!
//! The acceptance bar of the submission-path redesign (§3.4): with
//! submissions flowing through the per-process lock-free rings — drained
//! in batches by whoever holds the delegation lock — the many-producer
//! configuration must sustain at least **2x** the tasks/sec of the
//! pre-ring baseline, in which every `submit` took the `DtLock` itself.
//! The baseline is reproduced exactly by building the runtime with
//! `.submit_ring(0)` (rings disabled → every submission takes the locked
//! path).
//!
//! Each configuration `cpus × procs × producers` runs the full lifecycle
//! (`create` + `submit` + execute + `destroy`) from `producers` concurrent
//! submitter threads per process until a time budget elapses, and reports
//! completed tasks per second. The *many-producer* configuration (the one
//! the bar applies to) is several submitter threads hammering one process,
//! which concentrates all contention on the submission path itself rather
//! than on cross-process core handoffs.
//!
//! Writes `BENCH_sched.json` (override with `BENCH_SCHED_OUT`) with
//! before/after numbers per configuration so the perf trajectory is
//! recorded run over run. See the README's "Benchmarks" notes for the
//! field reference.
//!
//! Run with: `cargo bench -p bench --bench sched_throughput`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nosv::prelude::*;

/// One measured configuration.
#[derive(Clone, Copy)]
struct Config {
    cpus: usize,
    procs: usize,
    /// Submitter threads per process.
    producers: usize,
    /// The configuration the 2x acceptance bar applies to.
    many_producer: bool,
}

struct Sample {
    locked_tasks_per_s: f64,
    ring_tasks_per_s: f64,
}

/// Tasks/sec of the full submit+dispatch lifecycle under `cfg`, with the
/// given ring capacity (0 = the pre-ring locked baseline, which also
/// disables idle-CPU direct dispatch so it keeps measuring the original
/// every-submit-takes-the-DtLock path).
fn throughput(cfg: &Config, ring_cap: usize, budget: Duration) -> f64 {
    let rt = Arc::new(
        Runtime::builder()
            .cpus(cfg.cpus)
            .submit_ring(ring_cap)
            .direct_dispatch(ring_cap != 0)
            .build()
            .expect("valid config"),
    );
    let apps: Vec<Arc<ProcessContext>> = (0..cfg.procs)
        .map(|i| Arc::new(rt.attach(&format!("bench{i}")).expect("attach")))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    let submitters: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            (0..cfg.producers).map(|_| {
                let app = Arc::clone(app);
                let stop = Arc::clone(&stop);
                let completed = Arc::clone(&completed);
                std::thread::spawn(move || {
                    // Sliding submission window: reap the oldest handle
                    // once the window fills, so the submitter stays hot on
                    // the submission path while outstanding descriptors
                    // stay bounded.
                    const WINDOW: usize = 64;
                    let mut handles = std::collections::VecDeque::with_capacity(WINDOW);
                    while !stop.load(Ordering::Relaxed) {
                        let t = app.create_task(|_| {});
                        t.submit().expect("submit");
                        handles.push_back(t);
                        if handles.len() >= WINDOW {
                            let t = handles.pop_front().unwrap();
                            t.wait().unwrap();
                            t.destroy();
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    for t in handles {
                        t.wait().unwrap();
                        t.destroy();
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
        })
        .collect();
    while t0.elapsed() < budget {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for s in submitters {
        s.join().expect("submitter panicked");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let done = completed.load(Ordering::Relaxed);
    drop(apps);
    rt.shutdown();
    done as f64 / elapsed
}

fn main() {
    println!("== sched_throughput: submit+dispatch tasks/sec, ring vs locked ==");
    // Windows shorter than ~1 s mostly measure the pre-collapse transient
    // of the locked baseline (the DtLock convoy takes a moment to form
    // under oversubscription) and wildly overestimate it.
    let budget = Duration::from_millis(
        std::env::var("BENCH_SCHED_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000),
    );

    // The ISSUE grid: 1/2/4/8 CPUs × {1, 4} processes, one submitter
    // thread per process. The 4-process rows are multi-producer (four
    // threads hammering `submit` concurrently); the *many-producer
    // configuration* the 2x acceptance bar applies to is the 8-CPU ×
    // 4-process corner — the paper's co-execution scenario, and the point
    // where every locked submit convoys on the one DtLock all CPUs'
    // fetches wait on.
    let configs = [
        Config {
            cpus: 1,
            procs: 1,
            producers: 1,
            many_producer: false,
        },
        Config {
            cpus: 2,
            procs: 1,
            producers: 1,
            many_producer: false,
        },
        Config {
            cpus: 4,
            procs: 1,
            producers: 1,
            many_producer: false,
        },
        Config {
            cpus: 8,
            procs: 1,
            producers: 1,
            many_producer: false,
        },
        Config {
            cpus: 1,
            procs: 4,
            producers: 1,
            many_producer: false,
        },
        Config {
            cpus: 2,
            procs: 4,
            producers: 1,
            many_producer: false,
        },
        Config {
            cpus: 4,
            procs: 4,
            producers: 1,
            many_producer: false,
        },
        Config {
            cpus: 8,
            procs: 4,
            producers: 1,
            many_producer: true,
        },
    ];

    // The locked baseline's convoy collapse is strongly scheduling
    // dependent (a descheduled ticket holder stalls the whole FIFO), so a
    // single sample per side is a lottery; the median of `reps`
    // alternating samples is what gets reported.
    let reps: usize = std::env::var("BENCH_SCHED_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };

    let mut rows = Vec::new();
    let mut bar_ratio: Option<f64> = None;
    for cfg in &configs {
        // Alternate locked/ring samples so machine drift hits both sides
        // alike.
        let mut locked_samples = Vec::with_capacity(reps);
        let mut ring_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            locked_samples.push(throughput(cfg, 0, budget));
            ring_samples.push(throughput(cfg, nosv::DEFAULT_SUBMIT_RING_CAP, budget));
        }
        let sample = Sample {
            locked_tasks_per_s: median(locked_samples),
            ring_tasks_per_s: median(ring_samples),
        };
        let (locked, ring) = (sample.locked_tasks_per_s, sample.ring_tasks_per_s);
        let ratio = sample.ring_tasks_per_s / sample.locked_tasks_per_s;
        let tag = if cfg.many_producer {
            "  <- many-producer (2x bar)"
        } else {
            ""
        };
        println!(
            "  cpus={} procs={} producers={}:  locked {:>9.0}/s   ring {:>9.0}/s   {:>5.2}x{}",
            cfg.cpus, cfg.procs, cfg.producers, locked, ring, ratio, tag
        );
        if cfg.many_producer {
            bar_ratio = Some(ratio);
        }
        rows.push((cfg, sample, ratio));
    }

    let bar_ratio = bar_ratio.expect("a many-producer configuration is defined");
    let within = bar_ratio >= 2.0;
    println!("  many-producer speedup: {bar_ratio:.2}x  (bar: >= 2x)  within_bar: {within}");
    if !within {
        println!("  WARNING: ring submission below the 2x acceptance bar");
    }

    let out = std::env::var("BENCH_SCHED_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json").to_string()
    });
    let mut json = String::from(
        "{\n  \"bench\": \"sched_throughput\",\n  \"unit\": \"tasks_per_sec\",\n  \"configs\": [\n",
    );
    for (i, (cfg, s, ratio)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"cpus\": {}, \"procs\": {}, \"producers\": {}, \"many_producer\": {}, \
             \"locked_baseline\": {:.0}, \"ring\": {:.0}, \"speedup\": {:.3}}}{}\n",
            cfg.cpus,
            cfg.procs,
            cfg.producers,
            cfg.many_producer,
            s.locked_tasks_per_s,
            s.ring_tasks_per_s,
            ratio,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"many_producer_speedup\": {bar_ratio:.3},\n  \"acceptance_bar\": 2.0,\n  \
         \"within_bar\": {within}\n}}\n"
    ));
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  failed to write {out}: {e}"),
    }
}
