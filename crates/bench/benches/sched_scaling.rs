//! Scheduling throughput vs core count: does adding CPUs add capacity?
//!
//! The centralized delegation-lock scheduler *inverted* with scale: the
//! committed `BENCH_sched.json` record shows 1 CPU × 1 producer at 1.21M
//! tasks/s collapsing to 445k at 8 CPUs — every pick funnelled through
//! one lock hold, every submission woke another contender. This bench
//! pins the fixes (idle-CPU direct dispatch + hungry-gated wakes +
//! per-NUMA sharded scheduling cores, then per-producer ring lanes +
//! batch submission + the sticky standby election) to numbers:
//!
//! * tasks/s over 1/2/4/8 CPUs, single-producer (one submitter thread —
//!   the serial-submission case direct dispatch targets) and
//!   many-producer (4 and 8 submitter threads hammering one process);
//! * shards *off* (`sched_shards(1)`, the original single-lock core) vs
//!   shards *on* (2 CPUs per NUMA node, one shard per node);
//! * per-task submission (`create_task` + `submit`, sliding window) vs
//!   batched submission (`TaskBatch`/`submit_all`, 256 tasks per call —
//!   one ring reservation, one ready add, one wake per batch).
//!
//! Acceptance bars, evaluated on the default configuration and recorded
//! in `BENCH_scaling.json` (override path with `BENCH_SCALING_OUT`):
//!
//! * 8-CPU single-producer throughput ≥ **2x** the 445k tasks/s the
//!   pre-fix record measured for that corner;
//! * 8-CPU many-producer **batched** throughput ≥ **3M tasks/s** — the
//!   headline of the lane/batch PR (the per-task path ceilinged ≈ 1.2M);
//! * single-producer throughput monotone-or-flat (within 10%) along the
//!   whole 1 → 2 → 4 → 8 CPU chain (the 2–4 CPU dip was standby-election
//!   thrash; the sticky election removes it);
//! * sharded ≥ **0.95x** unsharded at 8 CPUs × 4 producers (sticky
//!   per-producer shard routing removed the rr-cursor scattering that
//!   made sharding a regression for many producers);
//! * standby re-elections bounded: ≤ 5% of tasks executed on the 8-CPU
//!   single-producer run.
//!
//! Run with: `cargo bench -p bench --bench sched_scaling`

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nosv::prelude::*;

/// The 8-CPU single-producer tasks/s of the committed pre-fix record
/// (`BENCH_sched.json`, cpus=8 procs=1 ring column) this bench's 2x bar
/// is anchored to.
const PRE_FIX_8CPU_RECORD: f64 = 444_688.0;

/// The lane/batch PR's headline bar: 8-CPU many-producer batched
/// submission throughput (tasks/s).
const BATCHED_BAR: f64 = 3_000_000.0;

/// Tasks per `TaskBatch` in batched mode (the largest size the
/// submit-stress grid exercises; amortizes ring sequencing, claim scans,
/// ready adds and wakes over 256 tasks).
const BATCH: usize = 256;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `create_task` + `submit` per task, sliding 64-handle window.
    Single,
    /// `submit_all` of 256-task batches, sliding 4-batch window.
    Batched,
}

#[derive(Clone, Copy)]
struct Config {
    cpus: usize,
    /// Submitter threads (all on one process).
    producers: usize,
    /// `false` = `sched_shards(1)` (single-lock core);
    /// `true` = 2 CPUs per NUMA node, one shard per node.
    sharded: bool,
    mode: Mode,
}

/// Process-wide (voluntary, involuntary) context-switch totals summed
/// over all live threads — a debug aid for the verbose mode (Linux only;
/// zeros elsewhere). Exited threads' switches are not counted.
fn ctxt_switches() -> (u64, u64) {
    let (mut vol, mut invol) = (0u64, 0u64);
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return (0, 0);
    };
    for t in tasks.flatten() {
        let Ok(status) = std::fs::read_to_string(t.path().join("status")) else {
            continue;
        };
        for line in status.lines() {
            if let Some(v) = line.strip_prefix("voluntary_ctxt_switches:") {
                vol += v.trim().parse::<u64>().unwrap_or(0);
            } else if let Some(v) = line.strip_prefix("nonvoluntary_ctxt_switches:") {
                invol += v.trim().parse::<u64>().unwrap_or(0);
            }
        }
    }
    (vol, invol)
}

/// Tasks/sec of the full lifecycle (create+submit+execute+destroy in
/// `Single` mode; batch build+submit_all+execute+latch in `Batched`),
/// plus the run's final counters.
fn throughput(cfg: &Config, budget: Duration) -> (f64, RuntimeStats) {
    let mut builder = Runtime::builder().cpus(cfg.cpus);
    builder = if cfg.sharded {
        builder.numa(2.min(cfg.cpus)) // one shard per 2-CPU node
    } else {
        builder.sched_shards(1)
    };
    let rt = Arc::new(builder.build().expect("valid config"));
    let app = Arc::new(rt.attach("scaling").expect("attach"));
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    let submitters: Vec<_> = (0..cfg.producers)
        .map(|_| {
            let app = Arc::clone(&app);
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            let mode = cfg.mode;
            std::thread::spawn(move || match mode {
                Mode::Single => {
                    // Sliding submission window (same harness as
                    // sched_throughput, so the records are comparable).
                    const WINDOW: usize = 64;
                    let mut handles = VecDeque::with_capacity(WINDOW);
                    while !stop.load(Ordering::Relaxed) {
                        let t = app.create_task(|_| {});
                        t.submit().expect("submit");
                        handles.push_back(t);
                        if handles.len() >= WINDOW {
                            let t = handles.pop_front().unwrap();
                            t.wait().unwrap();
                            t.destroy();
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    for t in handles {
                        t.wait().unwrap();
                        t.destroy();
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Mode::Batched => {
                    // Sliding batch window: 4 × 256 in flight keeps the
                    // workers fed without unbounded descriptor growth.
                    const WINDOW: usize = 4;
                    let mut handles: VecDeque<BatchHandle> = VecDeque::with_capacity(WINDOW);
                    while !stop.load(Ordering::Relaxed) {
                        let h = app
                            .submit_all(TaskBatch::new(BATCH).run(|_| {}))
                            .expect("submit_all");
                        handles.push_back(h);
                        if handles.len() >= WINDOW {
                            handles.pop_front().unwrap().wait().unwrap();
                            completed.fetch_add(BATCH as u64, Ordering::Relaxed);
                        }
                    }
                    for h in handles {
                        h.wait().unwrap();
                        completed.fetch_add(BATCH as u64, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    let switches0 = ctxt_switches();
    while t0.elapsed() < budget {
        std::thread::sleep(Duration::from_millis(5));
    }
    let switches1 = ctxt_switches();
    stop.store(true, Ordering::Relaxed);
    for s in submitters {
        s.join().expect("submitter panicked");
    }
    if std::env::var("BENCH_SCALING_VERBOSE").is_ok() {
        println!(
            "    ctxt switches over the budget window: voluntary {} involuntary {}",
            switches1.0.saturating_sub(switches0.0),
            switches1.1.saturating_sub(switches0.1),
        );
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let done = completed.load(Ordering::Relaxed);
    drop(app);
    let stats = rt.stats();
    rt.shutdown();
    (done as f64 / elapsed, stats)
}

fn main() {
    println!("== sched_scaling: tasks/sec vs CPUs, shards on/off, single vs batched ==");
    let budget = Duration::from_millis(
        std::env::var("BENCH_SCALING_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(800),
    );
    let reps: usize = std::env::var("BENCH_SCALING_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let median = |mut v: Vec<(f64, RuntimeStats)>| -> (f64, RuntimeStats) {
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        v.swap_remove(v.len() / 2)
    };

    // Debug aid: BENCH_SCALING_FILTER="single cpus=2 producers=1 shards=off"
    // runs only the rows whose printed label contains every
    // whitespace-separated token (the summary/bars are skipped).
    let filter = std::env::var("BENCH_SCALING_FILTER").ok();

    let mut rows: Vec<(Config, f64, RuntimeStats)> = Vec::new();
    for &mode in &[Mode::Single, Mode::Batched] {
        for &producers in &[1usize, 4, 8] {
            for &sharded in &[false, true] {
                for &cpus in &[1usize, 2, 4, 8] {
                    let cfg = Config {
                        cpus,
                        producers,
                        sharded,
                        mode,
                    };
                    if let Some(f) = &filter {
                        let label = format!(
                            "mode={} cpus={cpus} producers={producers} shards={}",
                            if mode == Mode::Batched {
                                "batched"
                            } else {
                                "single"
                            },
                            if sharded { "on" } else { "off" },
                        );
                        if !f.split_whitespace().all(|tok| label.contains(tok)) {
                            continue;
                        }
                    }
                    let samples: Vec<(f64, RuntimeStats)> =
                        (0..reps).map(|_| throughput(&cfg, budget)).collect();
                    let (rate, stats) = median(samples);
                    println!(
                        "  mode={} cpus={cpus} producers={producers} shards={}:  {rate:>9.0} tasks/s  (elections {}, handoffs {}, direct {})",
                        if mode == Mode::Batched { "batched" } else { "single " },
                        if sharded { "on " } else { "off" },
                        stats.standby_elections,
                        stats.cross_process_handoffs,
                        stats.direct_dispatches,
                    );
                    if std::env::var("BENCH_SCALING_VERBOSE").is_ok() {
                        println!("    {stats:?}");
                    }
                    rows.push((cfg, rate, stats));
                }
            }
        }
    }

    if filter.is_some() {
        println!("  (filtered run: summary, bars and record skipped)");
        return;
    }

    let row_of = |cpus: usize,
                  producers: usize,
                  sharded: bool,
                  mode: Mode|
     -> &(Config, f64, RuntimeStats) {
        rows.iter()
            .find(|(c, _, _)| {
                c.cpus == cpus && c.producers == producers && c.sharded == sharded && c.mode == mode
            })
            .expect("config measured")
    };
    let rate_of = |cpus: usize, producers: usize, sharded: bool, mode: Mode| {
        row_of(cpus, producers, sharded, mode).1
    };

    // The single-producer bars run on the shards-off column: that is the
    // pre-fix topology (one NUMA node, one lock), so the delta is the
    // direct-dispatch/wake/lane work, not a topology change.
    let single = [1usize, 2, 4, 8].map(|c| rate_of(c, 1, false, Mode::Single));
    let [single_1, single_2, single_4, single_8] = single;
    let speedup = single_8 / PRE_FIX_8CPU_RECORD;
    let meets_2x = speedup >= 2.0;
    // Monotone-or-flat (within 10%) along the whole chain: the 2–4 CPU
    // dip was standby-election thrash, fixed by the sticky election.
    let monotone_chain = single.windows(2).all(|w| w[1] >= 0.9 * w[0]);
    let monotone = single_8 >= 0.9 * single_4;
    println!("  8-CPU single-producer: {single_8:.0}/s = {speedup:.2}x the pre-fix 445k record (bar: >= 2x) -> {meets_2x}");
    println!(
        "  1 -> 2 -> 4 -> 8 CPUs single-producer: {single_1:.0} -> {single_2:.0} -> {single_4:.0} -> {single_8:.0} tasks/s, monotone-or-flat(10%) -> {monotone_chain}"
    );

    // The lane/batch headline: many-producer batched submission at 8
    // CPUs (best of the 4- and 8-producer columns — both are "many").
    let batched_many_8 =
        rate_of(8, 4, false, Mode::Batched).max(rate_of(8, 8, false, Mode::Batched));
    let meets_3m = batched_many_8 >= BATCHED_BAR;
    println!(
        "  8-CPU many-producer batched: {batched_many_8:.0}/s (bar: >= {BATCHED_BAR:.0}) -> {meets_3m}"
    );

    // Sticky shard routing: sharding must no longer cost many-producer
    // throughput.
    let unsharded_84 = rate_of(8, 4, false, Mode::Single);
    let sharded_84 = rate_of(8, 4, true, Mode::Single);
    let sharded_ratio = sharded_84 / unsharded_84;
    let sharded_ok = sharded_ratio >= 0.95;
    println!(
        "  8 CPUs x 4 producers: sharded {sharded_84:.0}/s vs unsharded {unsharded_84:.0}/s = {sharded_ratio:.3}x (bar: >= 0.95x) -> {sharded_ok}"
    );

    // Sticky standby election: re-elections must be rare on a serial
    // stream (re-electing per task was the 2–4 CPU dip).
    let stats_8 = &row_of(8, 1, false, Mode::Single).2;
    let elections_per_task = if stats_8.tasks_executed > 0 {
        stats_8.standby_elections as f64 / stats_8.tasks_executed as f64
    } else {
        0.0
    };
    let elections_ok = elections_per_task <= 0.05;
    println!(
        "  8-CPU single-producer standby elections: {} over {} tasks = {elections_per_task:.4}/task (bar: <= 0.05) -> {elections_ok}",
        stats_8.standby_elections, stats_8.tasks_executed
    );

    if !meets_2x || !monotone_chain || !meets_3m || !sharded_ok || !elections_ok {
        println!("  WARNING: scaling below the acceptance bars");
    }

    let out = std::env::var("BENCH_SCALING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json").to_string()
    });
    let mut json = String::from(
        "{\n  \"bench\": \"sched_scaling\",\n  \"unit\": \"tasks_per_sec\",\n  \"configs\": [\n",
    );
    for (i, (cfg, rate, _)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"cpus\": {}, \"producers\": {}, \"sharded\": {}, \"tasks_per_s\": {:.0}}}{}\n",
            if cfg.mode == Mode::Batched { "batched" } else { "single" },
            cfg.cpus,
            cfg.producers,
            cfg.sharded,
            rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"single_producer_8cpu\": {single_8:.0},\n  \
         \"pre_fix_8cpu_record\": {PRE_FIX_8CPU_RECORD:.0},\n  \
         \"speedup_vs_record\": {speedup:.3},\n  \
         \"meets_2x_bar\": {meets_2x},\n  \
         \"single_producer_1cpu\": {single_1:.0},\n  \
         \"single_producer_2cpu\": {single_2:.0},\n  \
         \"single_producer_4cpu\": {single_4:.0},\n  \
         \"monotone_4_to_8\": {monotone},\n  \
         \"monotone_1_2_4_8\": {monotone_chain},\n  \
         \"many_producer_batched_8cpu\": {batched_many_8:.0},\n  \
         \"meets_3m_batched_bar\": {meets_3m},\n  \
         \"sharded_ratio_8cpu_4prod\": {sharded_ratio:.3},\n  \
         \"sharded_meets_095\": {sharded_ok},\n  \
         \"standby_elections_per_task_8cpu\": {elections_per_task:.4},\n  \
         \"standby_elections_bounded\": {elections_ok}\n}}\n"
    ));
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  failed to write {out}: {e}"),
    }
}
