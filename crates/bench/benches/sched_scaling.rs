//! Scheduling throughput vs core count: does adding CPUs add capacity?
//!
//! The centralized delegation-lock scheduler *inverted* with scale: the
//! committed `BENCH_sched.json` record shows 1 CPU × 1 producer at 1.21M
//! tasks/s collapsing to 445k at 8 CPUs — every pick funnelled through
//! one lock hold, every submission woke another contender. This bench
//! pins the fix (idle-CPU direct dispatch + hungry-gated wakes +
//! per-NUMA sharded scheduling cores) to numbers:
//!
//! * tasks/s over 1/2/4/8 CPUs, single-producer (one submitter thread —
//!   the serial-submission case direct dispatch targets) and
//!   many-producer (4 submitter threads hammering one process);
//! * shards *off* (`sched_shards(1)`, the original single-lock core) vs
//!   shards *on* (2 CPUs per NUMA node, one shard per node).
//!
//! Acceptance bars, evaluated on the default configuration and recorded
//! in `BENCH_scaling.json` (override path with `BENCH_SCALING_OUT`):
//!
//! * 8-CPU single-producer throughput ≥ **2x** the 445k tasks/s the
//!   pre-fix record measured for that corner;
//! * throughput monotone-or-flat (within 10%) from 4 → 8 CPUs instead of
//!   falling.
//!
//! Run with: `cargo bench -p bench --bench sched_scaling`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nosv::prelude::*;

/// The 8-CPU single-producer tasks/s of the committed pre-fix record
/// (`BENCH_sched.json`, cpus=8 procs=1 ring column) this bench's 2x bar
/// is anchored to.
const PRE_FIX_8CPU_RECORD: f64 = 444_688.0;

#[derive(Clone, Copy)]
struct Config {
    cpus: usize,
    /// Submitter threads (all on one process).
    producers: usize,
    /// `false` = `sched_shards(1)` (single-lock core);
    /// `true` = 2 CPUs per NUMA node, one shard per node.
    sharded: bool,
}

/// Tasks/sec of the full create+submit+execute+destroy lifecycle.
fn throughput(cfg: &Config, budget: Duration) -> f64 {
    let mut builder = Runtime::builder().cpus(cfg.cpus);
    builder = if cfg.sharded {
        builder.numa(2.min(cfg.cpus)) // one shard per 2-CPU node
    } else {
        builder.sched_shards(1)
    };
    let rt = Arc::new(builder.build().expect("valid config"));
    let app = Arc::new(rt.attach("scaling").expect("attach"));
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    let submitters: Vec<_> = (0..cfg.producers)
        .map(|_| {
            let app = Arc::clone(&app);
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                // Sliding submission window (same harness as
                // sched_throughput, so the records are comparable).
                const WINDOW: usize = 64;
                let mut handles = std::collections::VecDeque::with_capacity(WINDOW);
                while !stop.load(Ordering::Relaxed) {
                    let t = app.create_task(|_| {});
                    t.submit().expect("submit");
                    handles.push_back(t);
                    if handles.len() >= WINDOW {
                        let t = handles.pop_front().unwrap();
                        t.wait();
                        t.destroy();
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                for t in handles {
                    t.wait();
                    t.destroy();
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    while t0.elapsed() < budget {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for s in submitters {
        s.join().expect("submitter panicked");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let done = completed.load(Ordering::Relaxed);
    drop(app);
    rt.shutdown();
    done as f64 / elapsed
}

fn main() {
    println!("== sched_scaling: tasks/sec vs CPUs, shards on/off ==");
    let budget = Duration::from_millis(
        std::env::var("BENCH_SCALING_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(800),
    );
    let reps: usize = std::env::var("BENCH_SCALING_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };

    let mut rows: Vec<(Config, f64)> = Vec::new();
    for &producers in &[1usize, 4] {
        for &sharded in &[false, true] {
            for &cpus in &[1usize, 2, 4, 8] {
                let cfg = Config {
                    cpus,
                    producers,
                    sharded,
                };
                let samples: Vec<f64> = (0..reps).map(|_| throughput(&cfg, budget)).collect();
                let rate = median(samples);
                println!(
                    "  cpus={cpus} producers={producers} shards={}:  {rate:>9.0} tasks/s",
                    if sharded { "on " } else { "off" },
                );
                rows.push((cfg, rate));
            }
        }
    }

    let rate_of = |cpus: usize, producers: usize, sharded: bool| -> f64 {
        rows.iter()
            .find(|(c, _)| c.cpus == cpus && c.producers == producers && c.sharded == sharded)
            .map(|&(_, r)| r)
            .expect("config measured")
    };
    // The bars run on the shards-off single-producer column: that is the
    // pre-fix topology (one NUMA node, one lock), so the delta is the
    // direct-dispatch/wake work, not a topology change.
    let single_8 = rate_of(8, 1, false);
    let single_4 = rate_of(4, 1, false);
    let speedup = single_8 / PRE_FIX_8CPU_RECORD;
    let meets_2x = speedup >= 2.0;
    let monotone = single_8 >= 0.9 * single_4;
    println!("  8-CPU single-producer: {single_8:.0}/s = {speedup:.2}x the pre-fix 445k record (bar: >= 2x) -> {meets_2x}");
    println!(
        "  4 -> 8 CPUs single-producer: {single_4:.0} -> {single_8:.0} tasks/s, monotone-or-flat(10%) -> {monotone}"
    );
    if !meets_2x || !monotone {
        println!("  WARNING: scaling below the acceptance bars");
    }

    let out = std::env::var("BENCH_SCALING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json").to_string()
    });
    let mut json = String::from(
        "{\n  \"bench\": \"sched_scaling\",\n  \"unit\": \"tasks_per_sec\",\n  \"configs\": [\n",
    );
    for (i, (cfg, rate)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"cpus\": {}, \"producers\": {}, \"sharded\": {}, \"tasks_per_s\": {:.0}}}{}\n",
            cfg.cpus,
            cfg.producers,
            cfg.sharded,
            rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"single_producer_8cpu\": {single_8:.0},\n  \
         \"pre_fix_8cpu_record\": {PRE_FIX_8CPU_RECORD:.0},\n  \
         \"speedup_vs_record\": {speedup:.3},\n  \
         \"meets_2x_bar\": {meets_2x},\n  \
         \"single_producer_4cpu\": {single_4:.0},\n  \
         \"monotone_4_to_8\": {monotone}\n}}\n"
    ));
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  failed to write {out}: {e}"),
    }
}
