//! Figure 5: baseline overhead of the nOS-V integration.
//!
//! For each of the seven real kernels, runs the task graph at *peak* task
//! granularity and at a deliberately-too-fine granularity (where runtime
//! overhead dominates; the paper picks points near 50% of peak), on both
//! runtime shapes:
//!
//! * original Nanos6 (standalone backend: own pool + scheduler), and
//! * Nanos6 + nOS-V (scheduling/CPU management delegated to nOS-V),
//!
//! reporting per-kernel performance scores relative to the best of the
//! four configurations — Fig. 5's bars. The expected shape is parity
//! between backends at both granularities.
//!
//! Regenerate with: `cargo bench -p bench --bench fig5_baseline`
//! (`NOSV_REPRO_SIZE=big` enlarges the problems.)

use std::time::Instant;

use nanos::{Backend, NanosRuntime};
use workloads::kernels::{self, KernelRun};

#[derive(Clone, Copy, PartialEq)]
enum Grain {
    Peak,
    Small,
}

struct Case {
    name: &'static str,
    run: fn(&NanosRuntime, Grain, usize) -> KernelRun,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "Matmul",
            run: |nr, g, s| match g {
                Grain::Peak => kernels::matmul::run(nr, 4, 12 * s),
                Grain::Small => kernels::matmul::run(nr, 16, 3 * s),
            },
        },
        Case {
            name: "Dot-product",
            run: |nr, g, s| match g {
                Grain::Peak => kernels::dot::run(nr, 100_000 * s, 8, 10),
                Grain::Small => kernels::dot::run(nr, 100_000 * s, 256, 10),
            },
        },
        Case {
            name: "Heat",
            run: |nr, g, s| match g {
                Grain::Peak => kernels::heat::run(nr, 64 * s, 32 * s, 8, 6),
                Grain::Small => kernels::heat::run(nr, 64 * s, 32 * s, 32, 6),
            },
        },
        Case {
            name: "HPCCG",
            run: |nr, g, s| match g {
                Grain::Peak => kernels::hpccg::run(nr, 50_000 * s, 8, 6),
                Grain::Small => kernels::hpccg::run(nr, 50_000 * s, 96, 6),
            },
        },
        Case {
            name: "NBody",
            run: |nr, g, s| match g {
                Grain::Peak => kernels::nbody::run(nr, 256 * s, 8, 2),
                Grain::Small => kernels::nbody::run(nr, 256 * s, 64, 2),
            },
        },
        Case {
            name: "Cholesky",
            run: |nr, g, s| match g {
                Grain::Peak => kernels::cholesky::run(nr, 6, 10 * s),
                Grain::Small => kernels::cholesky::run(nr, 18, 3 * s + 1),
            },
        },
        Case {
            name: "Lulesh",
            run: |nr, g, s| match g {
                Grain::Peak => kernels::lulesh::run(nr, 10_000 * s, 8, 10),
                Grain::Small => kernels::lulesh::run(nr, 10_000 * s, 192, 10),
            },
        },
    ]
}

fn time_run(nr: &NanosRuntime, case: &Case, grain: Grain, s: usize) -> (f64, KernelRun) {
    let _ = (case.run)(nr, grain, s); // warm-up
    let t0 = Instant::now();
    let out = (case.run)(nr, grain, s);
    (t0.elapsed().as_secs_f64(), out)
}

fn main() {
    let s = if std::env::var("NOSV_REPRO_SIZE").as_deref() == Ok("big") {
        3
    } else {
        1
    };
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    println!("== Figure 5: Nanos6 vs Nanos6+nOS-V baseline ({threads} workers, size x{s}) ==");
    println!(
        "  {:<12} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "peak-nanos6", "peak-nosv", "small-nanos6", "small-nosv"
    );

    for case in cases() {
        let mut times = [0.0f64; 4];
        let mut sums = [0.0f64; 4];
        for (slot, (grain, use_nosv)) in [
            (Grain::Peak, false),
            (Grain::Peak, true),
            (Grain::Small, false),
            (Grain::Small, true),
        ]
        .into_iter()
        .enumerate()
        {
            if use_nosv {
                let rt = nosv::Runtime::builder()
                    .cpus(threads)
                    .segment_size(64 * 1024 * 1024)
                    .build()
                    .expect("valid bench configuration");
                let app = rt.attach(case.name).expect("attach bench app");
                let nr = NanosRuntime::new(Backend::nosv(app));
                let (t, out) = time_run(&nr, &case, grain, s);
                times[slot] = t;
                sums[slot] = out.checksum;
                nr.shutdown();
                rt.shutdown();
            } else {
                let nr = NanosRuntime::new(Backend::standalone(threads));
                let (t, out) = time_run(&nr, &case, grain, s);
                times[slot] = t;
                sums[slot] = out.checksum;
                nr.shutdown();
            }
        }
        // Both backends must compute identical results at each granularity.
        assert!(
            (sums[0] - sums[1]).abs() <= 1e-6 * sums[0].abs().max(1.0),
            "{}: peak results diverge: {} vs {}",
            case.name,
            sums[0],
            sums[1]
        );
        assert!(
            (sums[2] - sums[3]).abs() <= 1e-6 * sums[2].abs().max(1.0),
            "{}: small-grain results diverge: {} vs {}",
            case.name,
            sums[2],
            sums[3]
        );
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "  {:<12} {:>14.3} {:>14.3} {:>14.3} {:>14.3}   (score = best/time)",
            case.name,
            best / times[0],
            best / times[1],
            best / times[2],
            best / times[3],
        );
    }
    println!(
        "\n  Expected shape (paper): within each granularity the two backends\n  \
         score ~equally — the nOS-V integration introduces no relevant\n  \
         performance penalty (Fig. 5)."
    );
}
