//! Figure 10: execution trace of one node of the distributed run, without
//! and with the NUMA affinity policy, plus remote-access fractions.
//!
//! The paper's trace shows HPCCG rank-0 tasks (white), rank-1 tasks (gray)
//! and N-Body tasks (red) over the 48 cores of both sockets; without
//! affinity 70.4% of HPCCG's accesses are remote, with affinity the tasks
//! pin to their data's socket. Here the simulation streams its `ObsEvent`s
//! into an `AsciiTimelineSink` (one row per core, uppercase = local task,
//! lowercase = remote; A/B = HPCCG ranks, C = N-Body) — the same sink type
//! that renders a live `nosv::Runtime` trace.
//!
//! Regenerate with: `cargo bench -p bench --bench fig10_trace`

use bench::{env_scale, env_seed};
use mpisim::{run_distributed_observed, DistConfig, DistStrategy};
use simnode::{AsciiTimelineSink, SimOptions};

fn main() {
    let cfg = DistConfig {
        nodes: 8,
        scale: (env_scale() * 0.6).max(0.05), // keep the trace readable
        sim: SimOptions {
            seed: env_seed(),
            ..Default::default()
        },
    };
    println!("== Figure 10: execution trace, one Skylake node (48 cores) ==");
    for (label, strategy) in [
        ("w/o affinity", DistStrategy::Nosv),
        ("with affinity", DistStrategy::NosvAffinity),
    ] {
        let sink = AsciiTimelineSink::new(48, 100);
        let o = run_distributed_observed(strategy, &cfg, Some(&sink));
        println!(
            "\n-- {label}: HPCCG remote NUMA accesses {:.1}% (paper: {}) --",
            o.hpccg_remote_fraction * 100.0,
            if strategy == DistStrategy::Nosv {
                "70.4%"
            } else {
                "negligible"
            }
        );
        println!("   A/B = HPCCG rank 0/1, C = NBody; lowercase = remote socket");
        print!("{}", sink.render());
    }
}
