//! Tracing-overhead microbenchmark: the cost of the observability hot path.
//!
//! The acceptance bar of the per-worker-buffer redesign: with a sink
//! installed, the submit/start/end hot path must stay within 2x of a
//! tracing-off runtime — i.e. recording an event is a thread-local push
//! (workers) or one uncontended sink call (submitters), never a global
//! lock shared by all workers.
//!
//! Measures the full `create`+`submit`+run+`destroy` task lifecycle (the
//! path that emits Submit/Start/End) in three configurations:
//!
//! * `off`    — no sink installed (events are never constructed);
//! * `memory` — a `MemorySink`, drained periodically;
//! * `null`   — a sink that discards events (isolates the emission path
//!   from sink-side storage costs).
//!
//! Writes the results to `BENCH_trace.json` (override the path with
//! `BENCH_TRACE_OUT`) so the perf trajectory is recorded run over run.
//!
//! Run with: `cargo bench -p bench --bench trace_overhead`

use std::sync::Arc;
use std::time::Instant;

use nosv::prelude::*;

/// A sink that swallows events (emission-path cost only).
struct NullSink;

impl TraceSink for NullSink {
    fn on_event(&self, _ev: &ObsEvent) {}
}

/// Per-op nanoseconds of the task lifecycle on `rt`, amortized over enough
/// iterations for a stable estimate.
fn lifecycle_ns(rt: &Runtime, drain: impl Fn()) -> (f64, u64) {
    let app = rt.attach("bench").expect("attach");
    let op = || {
        let t = app.create_task(|_| {});
        t.submit().expect("fresh submit");
        t.wait().unwrap();
        t.destroy();
    };
    // Warm up and probe the per-op cost.
    let t0 = Instant::now();
    let mut probe = 0u64;
    while t0.elapsed().as_millis() < 20 {
        op();
        probe += 1;
    }
    drain();
    let per_op = t0.elapsed().as_nanos() as f64 / probe as f64;
    let iters = ((200_000_000.0 / per_op.max(1.0)) as u64).clamp(100, 1_000_000);
    let t0 = Instant::now();
    for i in 0..iters {
        op();
        if i % 4096 == 0 {
            drain(); // keep memory bounded without perturbing the loop
        }
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    drop(app);
    (ns, iters)
}

fn main() {
    println!("== trace_overhead: observability hot-path cost ==");

    let (off_ns, off_iters) = {
        let rt = Runtime::builder().cpus(2).build().expect("valid");
        let r = lifecycle_ns(&rt, || {});
        rt.shutdown();
        r
    };
    println!("  off     {off_ns:>10.1} ns/op   ({off_iters} iters)");

    let (mem_ns, mem_iters) = {
        let sink = Arc::new(MemorySink::new());
        let drain_sink = Arc::clone(&sink);
        let rt = Runtime::builder()
            .cpus(2)
            .sink(sink.clone())
            .build()
            .expect("valid");
        let r = lifecycle_ns(&rt, move || {
            drain_sink.take();
        });
        rt.shutdown();
        r
    };
    println!("  memory  {mem_ns:>10.1} ns/op   ({mem_iters} iters)");

    let (null_ns, null_iters) = {
        let rt = Runtime::builder()
            .cpus(2)
            .sink(Arc::new(NullSink))
            .build()
            .expect("valid");
        let r = lifecycle_ns(&rt, || {});
        rt.shutdown();
        r
    };
    println!("  null    {null_ns:>10.1} ns/op   ({null_iters} iters)");

    let ratio_mem = mem_ns / off_ns;
    let ratio_null = null_ns / off_ns;
    println!("  overhead: memory {ratio_mem:.3}x, null {ratio_null:.3}x  (bar: < 2x)");
    if ratio_mem >= 2.0 {
        println!("  WARNING: memory-sink overhead exceeds the 2x acceptance bar");
    }

    // Default to the workspace root so successive runs overwrite one
    // trajectory file regardless of the invocation directory.
    let out = std::env::var("BENCH_TRACE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json").to_string()
    });
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"unit\": \"ns_per_task_lifecycle\",\n  \
         \"tracing_off\": {off_ns:.1},\n  \"memory_sink\": {mem_ns:.1},\n  \
         \"null_sink\": {null_ns:.1},\n  \"overhead_ratio_memory\": {ratio_mem:.4},\n  \
         \"overhead_ratio_null\": {ratio_null:.4},\n  \"acceptance_bar\": 2.0,\n  \
         \"within_bar\": {}\n}}\n",
        ratio_mem < 2.0
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  failed to write {out}: {e}"),
    }
}
