//! Figure 9: total makespan of the distributed HPCCG + N-Body co-execution
//! on the (simulated) 8-node dual-socket Skylake cluster, per strategy.
//!
//! Regenerate with: `cargo bench -p bench --bench fig9_distributed`

use bench::{env_scale, env_seed};
use mpisim::{run_all, DistConfig, DistStrategy};
use simnode::SimOptions;

fn main() {
    let cfg = DistConfig {
        nodes: 8,
        scale: env_scale() * 4.0, // distributed runs are cheaper to simulate
        sim: SimOptions {
            seed: env_seed(),
            ..Default::default()
        },
    };
    println!(
        "== Figure 9: distributed HPCCG (2 ranks/node) + N-Body (1 rank/node), {} nodes ==",
        cfg.nodes
    );
    println!(
        "  {:<24} {:>12} {:>12} {:>12} {:>14}",
        "strategy", "HPCCG (s)", "NBody (s)", "total (s)", "HPCCG remote%"
    );
    let outcomes = run_all(&cfg);
    let exclusive = outcomes
        .iter()
        .find(|o| o.strategy == DistStrategy::Exclusive)
        .expect("exclusive present")
        .makespan_ns;
    for o in &outcomes {
        println!(
            "  {:<24} {:>12.2} {:>12.2} {:>12.2} {:>13.1}%",
            o.strategy.name(),
            o.hpccg_ns as f64 / 1e9,
            o.nbody_ns as f64 / 1e9,
            o.makespan_ns as f64 / 1e9,
            o.hpccg_remote_fraction * 100.0
        );
    }
    let affine = outcomes
        .iter()
        .find(|o| o.strategy == DistStrategy::NosvAffinity)
        .expect("affinity present")
        .makespan_ns;
    println!(
        "\n  nOS-V+affinity speedup over exclusive: {:.3}x (paper: 1.21x)",
        exclusive as f64 / affine as f64
    );
    println!(
        "  Expected shape (paper): co-location worst (halving the machine is\n  \
         not the optimal split); DLB and plain nOS-V middle (cross-socket\n  \
         task migration costs remote NUMA accesses); nOS-V + NUMA affinity\n  \
         best."
    );
}
