//! Figure 6: performance score of every pairwise benchmark combination
//! under each of the six strategies, as six heatmaps (higher is better).
//!
//! Regenerate with:
//! `cargo bench -p bench --bench fig6_pairwise`
//! (`NOSV_REPRO_SCALE` scales the workloads; see `bench` crate docs.)

use bench::{env_scale, env_seed, median, print_heatmap};
use simnode::{NodeSpec, SimOptions};
use strategies::{evaluate_combo, pairwise_combos, Strategy, StrategyConfig};
use workloads::{all_benchmarks, benchmark};

fn main() {
    let scale = env_scale();
    let node = NodeSpec::amd_rome();
    let benches = all_benchmarks();
    let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
    let cfg = StrategyConfig {
        sim: SimOptions {
            seed: env_seed(),
            ..Default::default()
        },
        ..Default::default()
    };

    println!("== Figure 6: pairwise co-scheduling performance scores ==");
    println!(
        "   node: 64-core AMD-Rome model, quantum 20 ms, scale {scale} \
         ({} cells x 6 strategies)",
        pairwise_combos(benches.len()).len()
    );

    let models: Vec<_> = benches.iter().map(|&b| benchmark(b, scale)).collect();
    let combos = pairwise_combos(benches.len());
    let mut outcomes = Vec::with_capacity(combos.len());
    for combo in combos {
        let apps = vec![models[combo[0]].clone(), models[combo[1]].clone()];
        let out = evaluate_combo(&node, &apps, combo, &cfg);
        eprintln!(
            "   {} + {}: {:?} s",
            names[out.combo[0]],
            names[out.combo[1]],
            out.makespans
                .iter()
                .map(|m| (*m as f64 / 1e8).round() / 10.0)
                .collect::<Vec<_>>()
        );
        outcomes.push(out);
    }

    // Six heatmaps, one per strategy (paper layout: row >= col filled).
    for (si, strategy) in Strategy::all().into_iter().enumerate() {
        print_heatmap(strategy.name(), &names, |row, col| {
            if row < col {
                return None;
            }
            outcomes
                .iter()
                .find(|o| (o.combo[0], o.combo[1]) == (col, row))
                .map(|o| o.scores()[si])
        });
    }

    // §5.2 headline: median speedup of nOS-V over exclusive execution.
    let speedups: Vec<f64> = outcomes
        .iter()
        .map(|o| o.speedup_vs_exclusive(Strategy::Nosv))
        .collect();
    println!(
        "\n  median nOS-V speedup over exclusive (pairwise): {:.3}x (paper: 1.17x)",
        median(&speedups)
    );
    let worst = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("  minimum nOS-V speedup over exclusive: {worst:.3}x (paper: >= 1.0x)");
}
