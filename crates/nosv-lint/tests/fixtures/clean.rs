//! A fixture that exercises every rule class without violating any:
//! repr(C) segment type with position-independent fields, justified
//! `unsafe`, and explicit orderings throughout.

use std::sync::atomic::{AtomicU64, Ordering};

#[repr(C)]
pub struct SubmitRing {
    head: AtomicU64,
    tail: AtomicU64,
}

// SAFETY: SubmitRing is a pair of atomics; shared access is always safe.
unsafe impl Sync for SubmitRing {}

/// # Safety
///
/// `p` must point to a live, readable `u64`.
pub unsafe fn read_raw(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is valid (function contract).
    unsafe { *p }
}

pub fn advance(r: &SubmitRing) -> u64 {
    r.head.fetch_add(1, Ordering::AcqRel)
}
