//! Seeded fixture for the crash-point coverage rule: two named points,
//! of which the partial-coverage fixture dir mentions only the first.

fn push(x: u64) {
    crash_point("demo.push.reserved");
    publish(x);
    crash_point("demo.push.published");
}
