//! Seeded violations: pointers, containers and `usize` in a `#[repr(C)]`
//! struct, none of which are stable across address spaces.

#[repr(C)]
pub struct ClaimTable {
    slots: *mut u64,
    spare: Vec<u64>,
    len: usize,
}
