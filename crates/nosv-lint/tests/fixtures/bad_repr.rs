//! Seeded violation: a segment-resident type without `#[repr(C)]`.

pub struct SubmitRing {
    head: u64,
    tail: u64,
}
