//! Coverage fixture naming only the *first* point of
//! `chaos_src/protocol.rs`; the publish-side point is left uncovered
//! (and deliberately unnamed here — the coverage match is textual).

const POINTS: &[&str] = &["demo.push.reserved"];
