//! Seeded violation: atomic operations whose ordering argument neither
//! names `Ordering::…` nor is a recognized forwarded parameter.

use std::sync::atomic::AtomicU64;

pub fn bump(x: &AtomicU64, relaxed: std::sync::atomic::Ordering) -> u64 {
    x.fetch_add(1, relaxed)
}
