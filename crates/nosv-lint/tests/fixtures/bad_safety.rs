//! Seeded violations: `unsafe` impl, fn and block, all missing their
//! `// SAFETY:` / `# Safety` justification.

pub struct Wrapper(u32);

unsafe impl Send for Wrapper {}

pub unsafe fn poke(p: *mut u32) {
    unsafe { *p = 1 };
}
