//! Coverage fixture naming every point of `chaos_src/protocol.rs`.

const POINTS: &[&str] = &["demo.push.reserved", "demo.push.published"];
