//! End-to-end tests for the `nosv-lint` binary: each seeded fixture must
//! fail with its rule tag, the clean fixture must pass, and — the real
//! acceptance gate — the committed tree must lint clean in default mode.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lint(args: &[&Path]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nosv-lint"))
        .args(args)
        .output()
        .expect("nosv-lint binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn seeded_repr_violation_fails() {
    let out = run_lint(&[&fixture("bad_repr.rs")]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("[repr-layout]"), "{}", stdout(&out));
}

#[test]
fn seeded_field_violations_fail() {
    let out = run_lint(&[&fixture("bad_fields.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    // One per offending field: raw pointer, Vec, usize.
    assert_eq!(text.matches("[segment-field]").count(), 3, "{text}");
}

#[test]
fn seeded_safety_violations_fail() {
    let out = run_lint(&[&fixture("bad_safety.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    // One per unjustified site: unsafe impl, unsafe fn, unsafe block.
    assert_eq!(text.matches("[missing-safety]").count(), 3, "{text}");
}

#[test]
fn seeded_ordering_violation_fails() {
    let out = run_lint(&[&fixture("bad_ordering.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("[implicit-ordering]"), "{text}");
}

#[test]
fn clean_fixture_passes() {
    let out = run_lint(&[&fixture("clean.rs")]);
    assert!(out.status.success(), "{}", stdout(&out));
}

#[test]
fn uncovered_crash_point_fails() {
    let out = run_lint(&[
        Path::new("coverage"),
        &fixture("chaos_src"),
        Path::new("--fixtures"),
        &fixture("chaos_cover_partial"),
    ]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("[uncovered-crash-point]"), "{text}");
    assert!(text.contains("demo.push.published"), "{text}");
    // The covered point is not reported.
    assert!(!text.contains("demo.push.reserved"), "{text}");
}

#[test]
fn fully_covered_crash_points_pass() {
    let out = run_lint(&[
        Path::new("coverage"),
        &fixture("chaos_src"),
        Path::new("--fixtures"),
        &fixture("chaos_cover_full"),
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
}

/// Default mode runs the per-file rules *and* crash-point coverage over
/// the real tree: every `crash_point("…")` in the protocol and runtime
/// sources must be exercised by the chaos kill matrix or a model suite.
#[test]
fn committed_tree_is_clean() {
    let out = run_lint(&[]);
    assert!(out.status.success(), "{}", stdout(&out));
}
