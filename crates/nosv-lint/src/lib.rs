//! Project-specific source lints for the nOS-V reproduction.
//!
//! `nosv-lint` is a dependency-free, text-level scanner that enforces the
//! invariants the compiler cannot see but the cross-process design relies
//! on (run it with `cargo run -p nosv-lint`; CI runs it as a blocking job):
//!
//! 1. **Segment-resident layout** ([`Rule::ReprLayout`]): the types that
//!    live inside shared-memory segments (`SubmitRing`, `ClaimTable`,
//!    `ProcSlot`, the allocator headers, …) must be `#[repr(C)]` (or
//!    `#[repr(transparent)]`), otherwise their layout is not stable across
//!    the processes mapping the segment.
//! 2. **Segment-field purity** ([`Rule::SegmentField`]): fields of any
//!    `#[repr(C)]` struct must not smuggle host-specific state into the
//!    segment — no raw pointers, references, `Box`/`Vec`/`String`, and no
//!    `usize`/`isize` (pointer-width types are not offsets; offsets are
//!    `Shoff`/`AtomicShoff`, whose wrappers in `offset.rs` are exempt).
//! 3. **`unsafe` justification** ([`Rule::MissingSafety`]): every `unsafe`
//!    block and `unsafe impl` carries a `// SAFETY:` comment, and every
//!    `unsafe fn` documents its contract (`/// # Safety` or a `// SAFETY:`
//!    comment).
//! 4. **Explicit atomic orderings** ([`Rule::ImplicitOrdering`]): every
//!    atomic operation names an `Ordering::…` at the call site, or
//!    transparently forwards a parameter named `order`/`ordering`/
//!    `success`/`failure` — no defaults smuggled through helper wrappers.
//! 5. **Crash-point coverage** ([`Rule::UncoveredCrashPoint`], cross-file,
//!    see [`lint_crash_point_coverage`]): every named
//!    `crash_point("…")` in the protocol sources must appear in at least
//!    one chaos or model test fixture — a crash point nobody kills a
//!    participant at is an untested claim about recoverability.
//!
//! The scanner is deliberately line-oriented and conservative: it
//! understands doc/line comments, `#[cfg(test)] mod` regions (exempt from
//! the layout rules, not from the `unsafe`/ordering rules) and multi-line
//! call argument lists, and nothing else. That is enough for this
//! workspace's house style, and it keeps the tool auditable.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// A known segment-resident type is missing `#[repr(C)]`.
    ReprLayout,
    /// A `#[repr(C)]` struct field has a host-specific type.
    SegmentField,
    /// An `unsafe` site without a `// SAFETY:` / `/// # Safety` comment.
    MissingSafety,
    /// An atomic operation without an explicit `Ordering`.
    ImplicitOrdering,
    /// A named crash point no chaos/model test fixture exercises.
    UncoveredCrashPoint,
}

impl Rule {
    /// Short kebab-case tag used in the report.
    pub fn tag(self) -> &'static str {
        match self {
            Rule::ReprLayout => "repr-layout",
            Rule::SegmentField => "segment-field",
            Rule::MissingSafety => "missing-safety",
            Rule::ImplicitOrdering => "implicit-ordering",
            Rule::UncoveredCrashPoint => "uncovered-crash-point",
        }
    }
}

/// One finding: file, 1-based line, rule and message.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule class.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.tag(),
            self.message
        )
    }
}

/// Types that live inside shared-memory segments and therefore must have
/// an explicitly specified layout (`repr(C)` or `repr(transparent)`).
pub const SEGMENT_RESIDENT_TYPES: &[&str] = &[
    "SubmitRing",
    "RingSlot",
    "ClaimTable",
    "ProcSlot",
    "Header",
    "SlabGlobal",
    "ChunkHdr",
    "Magazine",
    "Shoff",
    "AtomicShoff",
];

/// Identifiers accepted as a transparently forwarded ordering parameter.
const ORDERING_PARAMS: &[&str] = &["order", "ordering", "success", "failure"];

/// Atomic operations that take an `Ordering` argument.
const ATOMIC_OPS: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_update(",
    "fence(",
];

/// Field-type fragments that must never appear in a segment-resident
/// struct (host pointers, host containers, pointer-width integers).
const FORBIDDEN_FIELD_TOKENS: &[&str] = &["*const", "*mut", "&", "Box<", "Vec<", "String"];

/// Lints one source string. `file` is used for reporting and scoping
/// (`offset.rs` is exempt from [`Rule::SegmentField`]).
pub fn lint_source(file: &Path, src: &str) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let in_tests = test_region_mask(&lines);
    let mut out = Vec::new();
    check_unsafe_sites(file, &lines, &mut out);
    check_atomic_orderings(file, &lines, &mut out);
    check_struct_layout(file, &lines, &in_tests, &mut out);
    out
}

/// Lints every `.rs` file under `paths` (files or directories, recursed).
pub fn lint_paths(paths: &[PathBuf]) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for p in paths {
        collect_rs_files(p, &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        out.extend(lint_source(&f, &src));
    }
    Ok(out)
}

/// Extracts the names of `crash_point("…")` call sites from one source
/// string as `(1-based line, name)` pairs. Comment lines are skipped, so
/// prose *about* a crash point (and the facade's own docs) never counts
/// as declaring one.
pub fn crash_point_names(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let code = split_comment(line).0;
        let mut from = 0;
        while let Some(pos) = code[from..].find("crash_point(\"") {
            let start = from + pos + "crash_point(\"".len();
            let Some(len) = code[start..].find('"') else {
                break;
            };
            out.push((i + 1, code[start..start + len].to_string()));
            from = start + len;
        }
    }
    out
}

/// Cross-file rule [`Rule::UncoveredCrashPoint`]: every crash point named
/// in the sources under `src_roots` must appear — as a plain string — in
/// at least one `.rs` file under `fixture_roots` (the chaos kill matrix
/// and the model suites). The fixture match is textual on purpose: a
/// kill-matrix array entry, a model-test fixture, or a fixture comment
/// tying a scenario to its point all count, and all of them break loudly
/// when the point is renamed.
pub fn lint_crash_point_coverage(
    src_roots: &[PathBuf],
    fixture_roots: &[PathBuf],
) -> std::io::Result<Vec<Violation>> {
    let mut src_files = Vec::new();
    for r in src_roots {
        collect_rs_files(r, &mut src_files)?;
    }
    src_files.sort();
    let mut fixture_files = Vec::new();
    for r in fixture_roots {
        collect_rs_files(r, &mut fixture_files)?;
    }
    let mut corpus = String::new();
    for f in &fixture_files {
        corpus.push_str(&std::fs::read_to_string(f)?);
        corpus.push('\n');
    }
    let mut out = Vec::new();
    for f in src_files {
        let src = std::fs::read_to_string(&f)?;
        for (line, name) in crash_point_names(&src) {
            if !corpus.contains(&name) {
                out.push(Violation {
                    file: f.clone(),
                    line,
                    rule: Rule::UncoveredCrashPoint,
                    message: format!(
                        "crash point `{name}` appears in no chaos or model test fixture"
                    ),
                });
            }
        }
    }
    Ok(out)
}

fn collect_rs_files(p: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let meta = std::fs::metadata(p)?;
    if meta.is_dir() {
        for entry in std::fs::read_dir(p)? {
            collect_rs_files(&entry?.path(), out)?;
        }
    } else if p.extension().is_some_and(|e| e == "rs") {
        out.push(p.to_path_buf());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Line helpers
// ---------------------------------------------------------------------------

/// Splits a line into (code, comment): everything before / after the first
/// `//` that is not inside a string literal.
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if escaped {
            escaped = false;
        } else if in_str {
            match b {
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                    return (&line[..i], &line[i..]);
                }
                _ => {}
            }
        }
        i += 1;
    }
    (line, "")
}

/// True when the line is nothing but a comment (`//`, `///`, `//!`).
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// True when the line is an attribute (possibly the start of a multi-line
/// one — treated as "skippable prefix" when walking up to find comments).
fn is_attr_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("#[") || t.starts_with("#![")
}

/// Whether `hay` contains `needle` as a whole word (neither neighbor is an
/// identifier character).
fn contains_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle, 0).is_some()
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Finds `needle` at a word boundary in `hay`, starting at byte `from`.
fn find_word(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(hay.as_bytes()[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= hay.len() || !is_ident_char(hay.as_bytes()[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + needle.len().max(1);
    }
    None
}

/// Marks lines inside `#[cfg(test)] mod …` regions.
fn test_region_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        let is_test_cfg =
            (t.starts_with("#[cfg(test)") || t.starts_with("#[cfg(all(test")) && t.contains("]");
        if is_test_cfg {
            // Find the `mod … {` this attribute decorates (skipping further
            // attributes and comments), then mask until its brace closes.
            let mut j = i + 1;
            while j < lines.len() && (is_attr_line(lines[j]) || is_comment_line(lines[j])) {
                j += 1;
            }
            if j < lines.len() && contains_word(split_comment(lines[j]).0, "mod") {
                let mut depth = 0i64;
                for (k, l) in lines.iter().enumerate().take(lines.len()).skip(j) {
                    mask[k] = true;
                    let code = split_comment(l).0;
                    depth += code.matches('{').count() as i64;
                    depth -= code.matches('}').count() as i64;
                    if depth == 0 && (code.contains('{') || code.contains('}')) {
                        i = k;
                        break;
                    }
                    if depth == 0 && code.contains(';') {
                        // `mod tests;` — nothing inline to mask.
                        i = k;
                        break;
                    }
                }
            }
        }
        i += 1;
    }
    mask
}

/// Walks upward from `line` over comments, attributes and — so one
/// `// SAFETY:` comment can cover the idiomatic consecutive
/// `unsafe impl Send`/`Sync` pair — other `unsafe impl` lines, returning
/// true if any comment/attribute line contains one of `needles`.
fn preceding_block_contains(lines: &[&str], line: usize, needles: &[&str]) -> bool {
    let mut i = line;
    while i > 0 {
        i -= 1;
        let l = lines[i];
        if is_comment_line(l) || is_attr_line(l) {
            if needles.iter().any(|n| l.contains(n)) {
                return true;
            }
        } else if !split_comment(l).0.contains("unsafe impl") {
            break;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: unsafe sites need SAFETY comments
// ---------------------------------------------------------------------------

fn check_unsafe_sites(file: &Path, lines: &[&str], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let (code, comment) = split_comment(line);
        let Some(pos) = find_word(code, "unsafe", 0) else {
            continue;
        };
        let after = code[pos + "unsafe".len()..].trim_start();
        if after.starts_with("impl") {
            if !preceding_block_contains(lines, i, &["SAFETY:"]) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: Rule::MissingSafety,
                    message: "`unsafe impl` without a `// SAFETY:` comment".into(),
                });
            }
        } else if after.starts_with("fn") {
            if !preceding_block_contains(lines, i, &["# Safety", "SAFETY:"]) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: Rule::MissingSafety,
                    message:
                        "`unsafe fn` without a `/// # Safety` contract (or `// SAFETY:` comment)"
                            .into(),
                });
            }
        } else {
            // An unsafe block (possibly mid-expression).
            let justified =
                comment.contains("SAFETY:") || preceding_block_contains(lines, i, &["SAFETY:"]);
            if !justified {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: i + 1,
                    rule: Rule::MissingSafety,
                    message: "`unsafe` block without a `// SAFETY:` comment".into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: atomics name their Ordering
// ---------------------------------------------------------------------------

fn check_atomic_orderings(file: &Path, lines: &[&str], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let code = split_comment(line).0;
        for op in ATOMIC_OPS {
            let mut from = 0;
            while let Some(pos) = code[from..].find(op) {
                let at = from + pos;
                from = at + op.len();
                // `fence(` must be a standalone call, not e.g. `off_fence(`.
                if !op.starts_with('.') {
                    let before = &code[..at];
                    if before.as_bytes().last().is_some_and(|&b| is_ident_char(b)) {
                        continue;
                    }
                }
                let args = call_args(lines, i, at + op.len() - 1);
                let explicit = args.contains("Ordering::")
                    || ORDERING_PARAMS.iter().any(|p| contains_word(&args, p));
                if !explicit {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: i + 1,
                        rule: Rule::ImplicitOrdering,
                        message: format!(
                            "atomic `{}…)` without an explicit `Ordering`",
                            op.trim_start_matches('.')
                        ),
                    });
                }
            }
        }
    }
}

/// Returns the argument text of a call whose opening paren is at byte
/// `open` of `lines[line]`, balancing parens across up to 12 lines.
fn call_args(lines: &[&str], line: usize, open: usize) -> String {
    let mut args = String::new();
    let mut depth = 0i64;
    for (li, l) in lines.iter().enumerate().skip(line).take(12) {
        let code = split_comment(l).0;
        let start = if li == line { open } else { 0 };
        for c in code[start.min(code.len())..].chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return args;
                    }
                }
                _ => {}
            }
            if depth >= 1 {
                args.push(c);
            }
        }
        args.push(' ');
    }
    args
}

// ---------------------------------------------------------------------------
// Rule: segment-resident struct layout and field purity
// ---------------------------------------------------------------------------

fn check_struct_layout(file: &Path, lines: &[&str], in_tests: &[bool], out: &mut Vec<Violation>) {
    let field_purity_exempt = file.file_name().is_some_and(|f| f == "offset.rs");
    let mut attrs: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if in_tests[i] {
            attrs.clear();
            i += 1;
            continue;
        }
        if is_attr_line(line) || is_comment_line(line) {
            if is_attr_line(line) {
                attrs.push(line);
            }
            i += 1;
            continue;
        }
        let code = split_comment(line).0;
        let Some(kw) = find_word(code, "struct", 0) else {
            attrs.clear();
            i += 1;
            continue;
        };
        let name: String = code[kw + "struct".len()..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let has_repr_c = attrs.iter().any(|a| a.contains("repr(C"));
        let has_repr_transparent = attrs.iter().any(|a| a.contains("repr(transparent"));
        if SEGMENT_RESIDENT_TYPES.contains(&name.as_str()) && !has_repr_c && !has_repr_transparent {
            out.push(Violation {
                file: file.to_path_buf(),
                line: i + 1,
                rule: Rule::ReprLayout,
                message: format!(
                    "segment-resident type `{name}` must be `#[repr(C)]` \
                     (or `#[repr(transparent)]`)"
                ),
            });
        }
        if has_repr_c && !field_purity_exempt {
            i = check_struct_fields(file, lines, i, &name, out);
        }
        attrs.clear();
        i += 1;
    }
}

/// Scans the body of the struct declared at `decl` for forbidden field
/// types; returns the line index of the closing brace (or `decl` for
/// bodyless declarations).
fn check_struct_fields(
    file: &Path,
    lines: &[&str],
    decl: usize,
    name: &str,
    out: &mut Vec<Violation>,
) -> usize {
    // Tuple structs / unit structs on one line.
    let decl_code = split_comment(lines[decl]).0;
    if decl_code.contains(';') && !decl_code.contains('{') {
        check_field_type(file, decl, name, decl_code, out);
        return decl;
    }
    let mut depth = 0i64;
    for (i, l) in lines.iter().enumerate().skip(decl) {
        let code = split_comment(l).0;
        depth += code.matches('{').count() as i64;
        depth -= code.matches('}').count() as i64;
        if i > decl && depth == 1 && !is_attr_line(l) {
            // A (possibly partial) field line: examine the type side.
            if let Some(colon) = code.find(':') {
                check_field_type(file, i, name, &code[colon + 1..], out);
            }
        }
        if depth == 0 && code.contains('}') {
            return i;
        }
    }
    lines.len() - 1
}

fn check_field_type(file: &Path, line: usize, name: &str, ty: &str, out: &mut Vec<Violation>) {
    for tok in FORBIDDEN_FIELD_TOKENS {
        if ty.contains(tok) {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line + 1,
                rule: Rule::SegmentField,
                message: format!(
                    "`#[repr(C)]` struct `{name}` field contains host-specific `{tok}`"
                ),
            });
        }
    }
    for tok in ["usize", "isize"] {
        if contains_word(ty, tok) {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line + 1,
                rule: Rule::SegmentField,
                message: format!(
                    "`#[repr(C)]` struct `{name}` field uses pointer-width `{tok}`; \
                     segment offsets are `Shoff`/`AtomicShoff`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        lint_source(Path::new("test.rs"), src)
    }

    fn tags(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule.tag()).collect()
    }

    #[test]
    fn clean_source_passes() {
        let v = lint(
            "// SAFETY: test fixture.\n\
             unsafe impl Send for X {}\n\
             fn f(a: &AtomicU64) -> u64 {\n\
                 a.load(Ordering::Acquire)\n\
             }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_safety_on_block_impl_and_fn() {
        let v = lint(
            "unsafe impl Sync for X {}\n\
             fn f() { unsafe { g() } }\n\
             pub unsafe fn g() {}\n",
        );
        assert_eq!(
            tags(&v),
            vec!["missing-safety", "missing-safety", "missing-safety"]
        );
    }

    #[test]
    fn safety_comment_variants_accepted() {
        let v = lint(
            "// SAFETY: a.\n\
             unsafe impl Sync for X {}\n\
             fn f() {\n\
                 // SAFETY: b.\n\
                 unsafe { g() }\n\
                 let x = unsafe { h() }; // SAFETY: c.\n\
             }\n\
             /// Does things.\n\
             ///\n\
             /// # Safety\n\
             ///\n\
             /// Caller checks.\n\
             #[inline]\n\
             pub unsafe fn g() {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn implicit_ordering_flagged_explicit_and_forwarded_pass() {
        let v = lint(
            "fn f(a: &AtomicU64, order: Ordering) {\n\
                 a.load(SOME_CONST);\n\
                 a.store(1, Ordering::Release);\n\
                 a.fetch_add(1, order);\n\
                 fence(Ordering::SeqCst);\n\
                 a.compare_exchange(0, 1, success, failure).ok();\n\
             }\n",
        );
        assert_eq!(tags(&v), vec!["implicit-ordering"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn multiline_call_arguments_are_balanced() {
        let v = lint(
            "fn f(a: &AtomicU64) {\n\
                 a.compare_exchange(\n\
                     0,\n\
                     compute(x, y),\n\
                     Ordering::AcqRel,\n\
                     Ordering::Acquire,\n\
                 ).ok();\n\
             }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn segment_type_requires_repr() {
        let v = lint("pub struct SubmitRing {\n    head: u64,\n}\n");
        assert_eq!(tags(&v), vec!["repr-layout"]);
        let v = lint("#[repr(C)]\npub struct SubmitRing {\n    head: u64,\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn repr_c_fields_must_be_position_independent() {
        let v = lint(
            "#[repr(C)]\n\
             struct Evil {\n\
                 p: *mut u8,\n\
                 v: Vec<u8>,\n\
                 n: usize,\n\
                 ok: AtomicU64,\n\
             }\n",
        );
        assert_eq!(
            tags(&v),
            vec!["segment-field", "segment-field", "segment-field"]
        );
    }

    #[test]
    fn test_modules_are_exempt_from_layout_rules() {
        let v = lint(
            "#[cfg(test)]\n\
             mod tests {\n\
                 pub struct SubmitRing {\n\
                     p: *mut u8,\n\
                 }\n\
             }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crash_point_names_extracts_calls_not_prose() {
        let names = crash_point_names(
            "// The `ring.push.reserved` point is documented here.\n\
             fn push() {\n\
                 crash_point(\"ring.push.reserved\");\n\
                 crash_point(\"ring.lane.unmarked\"); // after the mark\n\
             }\n\
             /// crash_point(\"doc.example.ignored\")\n",
        );
        assert_eq!(
            names,
            vec![
                (3, "ring.push.reserved".to_string()),
                (4, "ring.lane.unmarked".to_string()),
            ]
        );
    }

    #[test]
    fn non_atomic_identifiers_do_not_trip_word_matching() {
        // `UnsafeCell` is not the keyword; `off_fence(` is not `fence(`.
        let v = lint("fn f(c: &UnsafeCell<u8>) { off_fence(1); }\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
