//! CLI driver for [`nosv_lint`]: `cargo run -p nosv-lint [paths…]`.
//!
//! With no arguments, lints the protocol crates (`nosv-sync`, `nosv-shmem`,
//! `nosv-check`) with the per-file rules AND checks crash-point coverage
//! (every `crash_point("…")` in the protocol sources — including the
//! runtime crate's IPC and scheduler paths — must appear in a chaos or
//! model test fixture). With arguments, lints exactly those
//! files/directories with the per-file rules. With
//! `coverage <src>… --fixtures <dir>…`, runs only the coverage rule over
//! explicit roots (used by the self-test fixtures). Exits non-zero when
//! any violation is found.

use std::path::PathBuf;
use std::process::ExitCode;

fn crates_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("nosv-lint lives under crates/")
        .to_path_buf()
}

fn default_roots() -> Vec<PathBuf> {
    ["nosv-sync", "nosv-shmem", "nosv-check"]
        .iter()
        .map(|c| crates_dir().join(c).join("src"))
        .collect()
}

/// Sources scanned for `crash_point("…")` names: the protocol crates plus
/// the runtime crate (its IPC join and guest-submit paths carry points the
/// kill matrix must cover).
fn coverage_src_roots() -> Vec<PathBuf> {
    ["nosv-sync", "nosv-shmem", "nosv"]
        .iter()
        .map(|c| crates_dir().join(c).join("src"))
        .collect()
}

/// Where coverage may live: each crate's integration-test directory (the
/// chaos kill matrix in `nosv/tests/chaos.rs`, the model suites in
/// `nosv-sync/tests` and `nosv-shmem/tests`).
fn coverage_fixture_roots() -> Vec<PathBuf> {
    ["nosv-sync", "nosv-shmem", "nosv"]
        .iter()
        .map(|c| crates_dir().join(c).join("tests"))
        .collect()
}

fn report(violations: Vec<nosv_lint::Violation>) -> ExitCode {
    if violations.is_empty() {
        eprintln!("nosv-lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        eprintln!("nosv-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<PathBuf> = std::env::args_os().skip(1).map(PathBuf::from).collect();
    let result = if args.first().is_some_and(|a| a.as_os_str() == "coverage") {
        let rest = &args[1..];
        let split = rest
            .iter()
            .position(|a| a.as_os_str() == "--fixtures")
            .unwrap_or(rest.len());
        nosv_lint::lint_crash_point_coverage(&rest[..split], rest.get(split + 1..).unwrap_or(&[]))
    } else if args.is_empty() {
        nosv_lint::lint_paths(&default_roots()).and_then(|mut v| {
            v.extend(nosv_lint::lint_crash_point_coverage(
                &coverage_src_roots(),
                &coverage_fixture_roots(),
            )?);
            Ok(v)
        })
    } else {
        nosv_lint::lint_paths(&args)
    };
    match result {
        Ok(violations) => report(violations),
        Err(e) => {
            eprintln!("nosv-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
