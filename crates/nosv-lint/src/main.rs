//! CLI driver for [`nosv_lint`]: `cargo run -p nosv-lint [paths…]`.
//!
//! With no arguments, lints the protocol crates (`nosv-sync`, `nosv-shmem`,
//! `nosv-check`). With arguments, lints exactly those files/directories.
//! Exits non-zero when any violation is found.

use std::path::PathBuf;
use std::process::ExitCode;

fn default_roots() -> Vec<PathBuf> {
    let crates = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("nosv-lint lives under crates/")
        .to_path_buf();
    ["nosv-sync", "nosv-shmem", "nosv-check"]
        .iter()
        .map(|c| crates.join(c).join("src"))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<PathBuf> = std::env::args_os().skip(1).map(PathBuf::from).collect();
    let roots = if args.is_empty() {
        default_roots()
    } else {
        args
    };
    match nosv_lint::lint_paths(&roots) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("nosv-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("nosv-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("nosv-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
