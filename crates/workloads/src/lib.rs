//! # workloads: the paper's seven benchmarks
//!
//! §5.1 evaluates nOS-V on "a matrix multiplication, a vector dot-product,
//! a Gauss-Seidel heat equation simulation, the HPCCG proxy application, an
//! N-Body simulation, a Cholesky factorization, and the Lulesh 2.0 proxy
//! application". This crate provides each of them twice:
//!
//! * [`models`] — calibrated phase-structured [`simnode::AppModel`]s for
//!   the discrete-event simulator. The calibration targets are the exact
//!   utilization/bandwidth numbers the paper reports for the 64-core AMD
//!   Rome node (§5.2): dot-product 99.5 % CPU / 111 GB/s, heat 95.22 % /
//!   68.95 GB/s, HPCCG 73.3 % / 90.21 GB/s, N-Body 98.38 % / 0.66 GB/s —
//!   plus representative profiles for matmul, Cholesky and LULESH. These
//!   models drive the Fig. 6–8 reproduction.
//! * [`kernels`] — *real* task-graph implementations over the `nanos`
//!   runtime (actual floating-point work with data-flow dependencies),
//!   runnable on either backend. These drive the Fig. 5 baseline
//!   comparison and the examples, and their numerical results are checked
//!   in tests.
//!
//! Both halves report through the unified observability API (`nosv::obs`):
//! run a kernel on a `nanos::NanosRuntime::with_sink(..)` (data-flow
//! layer) and/or a `nosv::Runtime` built with `RuntimeBuilder::sink`
//! (scheduling layer), and drive the simulator models through
//! `simnode::SimSpec::sink` — one `TraceSink` implementation sees the same
//! `ObsEvent` schema from every path.

#![warn(missing_docs)]

pub mod kernels;
pub mod models;

pub use models::{all_benchmarks, benchmark, Benchmark};
