//! Calibrated simulator models of the seven benchmarks.
//!
//! All models target the paper's single-node platform (64-core AMD Rome,
//! socket bandwidth saturating around half the cores, §5.2) and are scaled
//! so that each benchmark's *exclusive* makespan is similar across
//! benchmarks — the paper chose "problem sizes to achieve a similar
//! execution time on every benchmark" (§5.2). A `scale` factor multiplies
//! the iteration counts so tests can run tiny instances of the same shapes.

use simnode::{AppModel, Phase, TaskModel};

/// The seven benchmarks of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Blocked dense matrix multiplication (compute-bound, coarse tasks).
    Matmul,
    /// Vector dot product (streaming, strongly memory-bound, fine tasks
    /// with frequent reductions).
    DotProduct,
    /// Gauss-Seidel heat equation (memory-bound wavefront; slightly
    /// width-limited parallelism).
    Heat,
    /// HPCCG conjugate-gradient proxy (memory-bound parallel phases
    /// separated by serial communication/reduction phases).
    Hpccg,
    /// N-Body simulation (compute-bound, negligible bandwidth).
    Nbody,
    /// Blocked Cholesky factorization (parallelism decays towards the
    /// trailing submatrix).
    Cholesky,
    /// LULESH 2.0 hydrodynamics proxy (mixed-intensity phases with serial
    /// sections and width-limited regions).
    Lulesh,
}

impl Benchmark {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Matmul => "matmul",
            Benchmark::DotProduct => "dot-product",
            Benchmark::Heat => "Heat",
            Benchmark::Hpccg => "HPCCG",
            Benchmark::Nbody => "Nbody",
            Benchmark::Cholesky => "Cholesky",
            Benchmark::Lulesh => "lulesh",
        }
    }
}

/// All seven, in the paper's figure order.
pub fn all_benchmarks() -> [Benchmark; 7] {
    [
        Benchmark::Heat,
        Benchmark::Nbody,
        Benchmark::Cholesky,
        Benchmark::DotProduct,
        Benchmark::Hpccg,
        Benchmark::Lulesh,
        Benchmark::Matmul,
    ]
}

/// Builds the calibrated model of `bench` for a 64-core node.
///
/// `scale` multiplies iteration counts; `1.0` yields an exclusive makespan
/// of roughly four simulated seconds (the figure harness default), while
/// tests use `0.02`–`0.1`.
pub fn benchmark(bench: Benchmark, scale: f64) -> AppModel {
    let iters = |n: usize| ((n as f64 * scale).round() as usize).max(1);
    match bench {
        Benchmark::Matmul => {
            // Coarse compute tiles; near-perfect utilization; modest
            // bandwidth (blocked GEMM is cache-friendly).
            let tile = TaskModel {
                work_ns: 12_000_000,
                bw_gbps: 0.4,
                mem_frac: 0.10,
                home_socket: None,
            };
            let init = ((40_000_000.0 * scale) as u64).max(1_000_000);
            let mut phases = vec![Phase::serial(TaskModel::compute(init))];
            phases.extend((0..iters(317)).map(|_| Phase::uniform(64, tile)));
            AppModel::new("matmul", phases)
        }
        Benchmark::DotProduct => {
            // Streaming chunks demanding ~112 GB/s across 64 cores, with a
            // tiny serial reduction closing every step: 99.4% utilization,
            // ~111 GB/s — the paper's measured profile.
            let chunk = TaskModel {
                work_ns: 8_000_000,
                bw_gbps: 1.75,
                mem_frac: 0.92,
                home_socket: None,
            };
            let reduce = TaskModel {
                work_ns: 50_000,
                bw_gbps: 0.1,
                mem_frac: 0.1,
                home_socket: None,
            };
            let mut phases = Vec::new();
            for _ in 0..iters(480) {
                phases.push(Phase::uniform(64, chunk));
                phases.push(Phase::serial(reduce));
            }
            AppModel::new("dot-product", phases)
        }
        Benchmark::Heat => {
            // Wavefront width 61 of 64 (95.3% utilization), memory-bound
            // rows totalling ~69 GB/s.
            // Fine-grained wavefront steps: short tasks and many barriers
            // are what make Gauss-Seidel so sensitive to oversubscription
            // (any preempted task delays the whole next wavefront).
            let row = TaskModel {
                work_ns: 600_000,
                bw_gbps: 1.13,
                mem_frac: 0.88,
                home_socket: None,
            };
            let phases = (0..iters(6500)).map(|_| Phase::uniform(61, row)).collect();
            AppModel::new("Heat", phases)
        }
        Benchmark::Hpccg => {
            // BSP: serial communication/reduction then a memory-bound
            // sparse phase: 71% utilization, ~123 GB/s while parallel
            // (~88 GB/s averaged over time — the paper reports 90.21).
            let comm = TaskModel::compute(4_800_000);
            let spmv = TaskModel {
                work_ns: 12_000_000,
                bw_gbps: 1.92,
                mem_frac: 0.90,
                home_socket: None,
            };
            let mut phases = Vec::new();
            for _ in 0..iters(233) {
                phases.push(Phase::serial(comm));
                phases.push(Phase::uniform(64, spmv));
            }
            AppModel::new("HPCCG", phases)
        }
        Benchmark::Nbody => {
            // Compute-bound force blocks; 0.66 GB/s total — essentially no
            // bandwidth footprint, 98.8% utilization.
            let forces = TaskModel {
                work_ns: 8_000_000,
                bw_gbps: 0.01,
                mem_frac: 0.02,
                home_socket: None,
            };
            let init = ((60_000_000.0 * scale) as u64).max(1_000_000);
            let mut phases = vec![Phase::serial(TaskModel::compute(init))];
            phases.extend((0..iters(470)).map(|_| Phase::uniform(64, forces)));
            AppModel::new("Nbody", phases)
        }
        Benchmark::Cholesky => {
            // Right-looking factorization: wide early panels, a decaying
            // tail (the classic trailing-submatrix parallelism drought).
            let block = TaskModel {
                work_ns: 8_000_000,
                bw_gbps: 0.5,
                mem_frac: 0.25,
                home_socket: None,
            };
            let mut phases = Vec::new();
            for _ in 0..iters(8) {
                for _ in 0..42 {
                    phases.push(Phase::uniform(64, block));
                }
                for k in 0..18 {
                    let width = (64 - k * 7 / 2).max(1);
                    phases.push(Phase::uniform(width, block));
                }
            }
            AppModel::new("Cholesky", phases)
        }
        Benchmark::Lulesh => {
            // Hydro iteration: a full-width mixed phase, a width-limited
            // phase, and a serial update — ~75% utilization overall.
            let full = TaskModel {
                work_ns: 9_000_000,
                bw_gbps: 0.8,
                mem_frac: 0.55,
                home_socket: None,
            };
            let limited = TaskModel {
                work_ns: 6_000_000,
                bw_gbps: 0.8,
                mem_frac: 0.55,
                home_socket: None,
            };
            let serial = TaskModel::compute(3_000_000);
            let mut phases = Vec::new();
            for _ in 0..iters(220) {
                phases.push(Phase::uniform(64, full));
                phases.push(Phase::uniform(48, limited));
                phases.push(Phase::serial(serial));
            }
            AppModel::new("lulesh", phases)
        }
    }
}

/// Aggregate profile of a model (used by calibration tests and docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Average CPU utilization assuming ideal packing on `cores`.
    pub utilization: f64,
    /// Mean total bandwidth demand while any task runs, GB/s.
    pub mean_bw_gbps: f64,
}

/// Computes the ideal-packing utilization and time-averaged bandwidth
/// demand of a model on `cores` cores (no contention effects).
pub fn profile(model: &AppModel, cores: usize) -> Profile {
    let mut total_time = 0.0;
    let mut busy_core_time = 0.0;
    let mut bw_time = 0.0; // GB/s x ns
    for phase in &model.phases {
        let work: f64 = phase
            .groups
            .iter()
            .map(|&(n, t)| n as f64 * t.work_ns as f64)
            .sum();
        let width: usize = phase.task_count().min(cores);
        let duration = work / width as f64;
        let demand: f64 = phase
            .groups
            .iter()
            .map(|&(n, t)| n as f64 * t.work_ns as f64 * t.bw_gbps)
            .sum::<f64>()
            / work.max(1.0)
            * width as f64;
        total_time += duration;
        busy_core_time += work;
        bw_time += demand * duration;
    }
    Profile {
        utilization: busy_core_time / (total_time * cores as f64),
        mean_bw_gbps: bw_time / total_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(b: Benchmark) -> Profile {
        profile(&benchmark(b, 0.2), 64)
    }

    #[test]
    fn dot_product_matches_paper_profile() {
        let pr = p(Benchmark::DotProduct);
        assert!(pr.utilization > 0.985, "util {}", pr.utilization);
        assert!(
            (pr.mean_bw_gbps - 111.0).abs() < 8.0,
            "bw {}",
            pr.mean_bw_gbps
        );
    }

    #[test]
    fn heat_matches_paper_profile() {
        let pr = p(Benchmark::Heat);
        assert!(
            (pr.utilization - 0.9522).abs() < 0.01,
            "util {}",
            pr.utilization
        );
        assert!(
            (pr.mean_bw_gbps - 68.95).abs() < 5.0,
            "bw {}",
            pr.mean_bw_gbps
        );
    }

    #[test]
    fn hpccg_matches_paper_profile() {
        let pr = p(Benchmark::Hpccg);
        assert!(
            (pr.utilization - 0.733).abs() < 0.03,
            "util {}",
            pr.utilization
        );
        assert!(
            (pr.mean_bw_gbps - 90.21).abs() < 8.0,
            "bw {}",
            pr.mean_bw_gbps
        );
    }

    #[test]
    fn nbody_matches_paper_profile() {
        let pr = p(Benchmark::Nbody);
        assert!(pr.utilization > 0.97, "util {}", pr.utilization);
        assert!(pr.mean_bw_gbps < 2.0, "bw {}", pr.mean_bw_gbps);
    }

    #[test]
    fn remaining_benchmarks_have_plausible_profiles() {
        let m = p(Benchmark::Matmul);
        assert!(m.utilization > 0.97);
        assert!(m.mean_bw_gbps < 40.0);
        let c = p(Benchmark::Cholesky);
        assert!((0.70..0.95).contains(&c.utilization), "{}", c.utilization);
        let l = p(Benchmark::Lulesh);
        assert!((0.65..0.85).contains(&l.utilization), "{}", l.utilization);
    }

    #[test]
    fn exclusive_makespans_are_similar() {
        // §5.2: problem sizes chosen for similar exclusive durations.
        let spans: Vec<u64> = all_benchmarks()
            .iter()
            .map(|&b| benchmark(b, 0.2).ideal_makespan_ns(64))
            .collect();
        let min = *spans.iter().min().unwrap() as f64;
        let max = *spans.iter().max().unwrap() as f64;
        assert!(max / min < 1.45, "exclusive spreads too wide: {spans:?}");
    }

    #[test]
    fn scale_controls_size() {
        let small = benchmark(Benchmark::Heat, 0.05).task_count();
        let large = benchmark(Benchmark::Heat, 0.5).task_count();
        assert!(large > 5 * small);
    }
}
