//! Chunked vector dot product with a task-based reduction.
//!
//! Each chunk task computes a partial sum (`out` on its partial slot); a
//! final reduction task reads every partial (`in`) and accumulates. The
//! kernel iterates the pattern, chaining iterations through the result
//! scalar — the repeated-reduction structure that makes dot-product so
//! barrier-heavy in the evaluation.

use nanos::{shared_mut, NanosRuntime, Region};

use super::{chunks, KernelRun};

/// Runs `iters` chunked dot products of two `n`-element vectors split into
/// `parts` chunks. Returns the accumulated result across iterations.
pub fn run(nr: &NanosRuntime, n: usize, parts: usize, iters: usize) -> KernelRun {
    let x: std::sync::Arc<Vec<f64>> =
        std::sync::Arc::new((0..n).map(|i| ((i % 23) as f64) * 0.5).collect());
    let y: std::sync::Arc<Vec<f64>> =
        std::sync::Arc::new((0..n).map(|i| ((i % 19) as f64) * 0.25).collect());

    let ranges = chunks(n, parts);
    let partials: Vec<_> = (0..ranges.len()).map(|_| shared_mut(0.0f64)).collect();
    let accum = shared_mut(0.0f64);

    const PARTIAL_SPACE: u64 = 20;
    const ACCUM_SPACE: u64 = 21;
    let accum_region = Region::logical(ACCUM_SPACE, 0);

    let mut tasks = 0u64;
    for _ in 0..iters {
        for (c, range) in ranges.iter().enumerate() {
            let x = std::sync::Arc::clone(&x);
            let y = std::sync::Arc::clone(&y);
            let p = partials[c].clone();
            let range = range.clone();
            nr.task()
                .output(Region::logical(PARTIAL_SPACE, c as u64))
                .body(move || {
                    let s: f64 = range.clone().map(|i| x[i] * y[i]).sum();
                    p.with(|v| *v = s);
                })
                .spawn();
            tasks += 1;
        }
        // Reduction: reads all partials, updates the accumulator.
        let ps: Vec<_> = partials.clone();
        let acc = accum.clone();
        let mut spec = nr.task().inout(accum_region);
        for c in 0..ranges.len() {
            spec = spec.input(Region::logical(PARTIAL_SPACE, c as u64));
        }
        spec.body(move || {
            let total: f64 = ps.iter().map(|p| p.with_read(|v| *v)).sum();
            acc.with(|a| *a += total);
        })
        .spawn();
        tasks += 1;
    }
    nr.taskwait();
    KernelRun {
        checksum: accum.with(|v| *v),
        tasks,
    }
}

/// Sequential reference.
pub fn reference(n: usize, iters: usize) -> f64 {
    let dot: f64 = (0..n)
        .map(|i| ((i % 23) as f64 * 0.5) * ((i % 19) as f64 * 0.25))
        .sum();
    dot * iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;
    use nanos::Backend;

    #[test]
    fn matches_reference() {
        let nr = NanosRuntime::new(Backend::standalone(3));
        let run = run(&nr, 10_000, 8, 5);
        assert_eq!(run.tasks, 5 * 9);
        assert_close(run.checksum, reference(10_000, 5), 1e-9);
        nr.shutdown();
    }

    #[test]
    fn chunk_count_does_not_change_result() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let a = run(&nr, 5_000, 2, 3).checksum;
        let b = run(&nr, 5_000, 16, 3).checksum;
        assert_close(a, b, 1e-9);
        nr.shutdown();
    }

    #[test]
    fn runs_on_nosv_backend() {
        let rt = nosv::Runtime::builder().cpus(2).build().expect("valid");
        let app = rt.attach("dot").expect("attach");
        let nr = NanosRuntime::new(Backend::nosv(app));
        let run = run(&nr, 4_000, 4, 2);
        assert_close(run.checksum, reference(4_000, 2), 1e-9);
        nr.shutdown();
        rt.shutdown();
    }
}
