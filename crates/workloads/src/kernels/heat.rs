//! Gauss-Seidel heat equation on a 2D grid, block-row tasks.
//!
//! The grid is split into horizontal row blocks. Per sweep, the task of
//! block `b` declares `inout(block b)`, `in(block b-1)` and
//! `in(block b+1)`; registration order makes the task graph equivalent to
//! the sequential in-place row-major sweep, and the resulting dependency
//! pattern is the diagonal *wavefront* that §5 highlights as heat's
//! signature (limited, sliding parallelism).

use nanos::{shared_mut, NanosRuntime, Region, SharedMut};

use super::{chunks, KernelRun};

struct BlockGrid {
    blocks: Vec<SharedMut<Vec<f64>>>,
    cols: usize,
}

fn init_value(r: usize, c: usize, rows: usize, cols: usize) -> f64 {
    // Hot left and top edges, cold interior.
    if r == 0 || c == 0 {
        100.0
    } else if r == rows - 1 || c == cols - 1 {
        0.0
    } else {
        ((r * 31 + c * 17) % 7) as f64
    }
}

fn build(rows: usize, cols: usize, nblocks: usize) -> BlockGrid {
    let ranges = chunks(rows, nblocks);
    let blocks = ranges
        .iter()
        .map(|range| {
            let mut v = vec![0.0; range.len() * cols];
            for (bi, r) in range.clone().enumerate() {
                for c in 0..cols {
                    v[bi * cols + c] = init_value(r, c, rows, cols);
                }
            }
            shared_mut(v)
        })
        .collect();
    BlockGrid { blocks, cols }
}

/// One Gauss-Seidel sweep over a block, given copies of the boundary rows.
fn sweep_block(
    block: &mut [f64],
    above: Option<&[f64]>,
    below: Option<&[f64]>,
    cols: usize,
    is_top: bool,
    is_bottom: bool,
) {
    let rows = block.len() / cols;
    for r in 0..rows {
        // Global boundary rows stay fixed.
        if (is_top && r == 0) || (is_bottom && r == rows - 1) {
            continue;
        }
        for c in 1..cols - 1 {
            let up = if r > 0 {
                block[(r - 1) * cols + c]
            } else {
                above.expect("interior block has a row above")[c]
            };
            let down = if r + 1 < rows {
                block[(r + 1) * cols + c]
            } else {
                below.expect("interior block has a row below")[c]
            };
            let left = block[r * cols + c - 1];
            let right = block[r * cols + c + 1];
            block[r * cols + c] = 0.25 * (up + down + left + right);
        }
    }
}

const BLOCK_SPACE: u64 = 30;

/// Runs `iters` Gauss-Seidel sweeps over a `rows x cols` grid split into
/// `nblocks` row blocks. Returns the grid sum.
pub fn run(nr: &NanosRuntime, rows: usize, cols: usize, nblocks: usize, iters: usize) -> KernelRun {
    let grid = build(rows, cols, nblocks);
    let nb = grid.blocks.len();
    let mut tasks = 0u64;
    for _ in 0..iters {
        for b in 0..nb {
            let me = grid.blocks[b].clone();
            let above = (b > 0).then(|| grid.blocks[b - 1].clone());
            let below = (b + 1 < nb).then(|| grid.blocks[b + 1].clone());
            let cols = grid.cols;
            let is_top = b == 0;
            let is_bottom = b + 1 == nb;

            let mut spec = nr.task().inout(Region::logical(BLOCK_SPACE, b as u64));
            if b > 0 {
                spec = spec.input(Region::logical(BLOCK_SPACE, b as u64 - 1));
            }
            if b + 1 < nb {
                spec = spec.input(Region::logical(BLOCK_SPACE, b as u64 + 1));
            }
            spec.body(move || {
                let above_row = above.map(|a| a.with_read(|v| v[v.len() - cols..].to_vec()));
                let below_row = below.map(|d| d.with_read(|v| v[..cols].to_vec()));
                me.with(|v| {
                    sweep_block(
                        v,
                        above_row.as_deref(),
                        below_row.as_deref(),
                        cols,
                        is_top,
                        is_bottom,
                    )
                });
            })
            .spawn();
            tasks += 1;
        }
    }
    nr.taskwait();
    let checksum = grid
        .blocks
        .iter()
        .map(|b| b.with(|v| v.iter().sum::<f64>()))
        .sum();
    KernelRun { checksum, tasks }
}

/// Sequential reference: identical sweeps on one flat grid.
pub fn reference(rows: usize, cols: usize, iters: usize) -> f64 {
    let mut g: Vec<f64> = (0..rows * cols)
        .map(|t| init_value(t / cols, t % cols, rows, cols))
        .collect();
    for _ in 0..iters {
        for r in 1..rows - 1 {
            for c in 1..cols - 1 {
                g[r * cols + c] = 0.25
                    * (g[(r - 1) * cols + c]
                        + g[(r + 1) * cols + c]
                        + g[r * cols + c - 1]
                        + g[r * cols + c + 1]);
            }
        }
    }
    g.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;
    use nanos::Backend;

    #[test]
    fn matches_sequential_gauss_seidel() {
        let nr = NanosRuntime::new(Backend::standalone(3));
        let run = run(&nr, 32, 16, 4, 3);
        assert_eq!(run.tasks, 12);
        assert_close(run.checksum, reference(32, 16, 3), 1e-9);
        nr.shutdown();
    }

    #[test]
    fn block_count_does_not_change_result() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let a = run(&nr, 24, 12, 2, 2).checksum;
        let b = run(&nr, 24, 12, 8, 2).checksum;
        assert_close(a, b, 1e-9);
        nr.shutdown();
    }

    #[test]
    fn heat_flows_from_hot_edge() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let before = reference(16, 16, 0);
        let after = run(&nr, 16, 16, 4, 10).checksum;
        // Sweeps diffuse the hot boundary into the interior: sum grows.
        assert!(after > before, "{after} <= {before}");
        nr.shutdown();
    }
}
