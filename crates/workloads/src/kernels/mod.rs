//! Real task-graph implementations of the seven benchmarks (§5.1).
//!
//! Unlike [`crate::models`], these kernels execute genuine floating-point
//! work as `nanos` task graphs with data-flow dependencies, and run on
//! either backend (standalone Nanos6-style pool, or delegated to nOS-V).
//! They power the Fig. 5 baseline experiment — comparing the two backends
//! at peak and at deliberately-too-fine task granularity — as well as the
//! runnable examples, and every kernel's numerical output is verified
//! against a reference in its tests.
//!
//! Sizes are parameterized: the benches use moderate problem sizes; tests
//! use tiny ones. `grain` parameters control task granularity (the number
//! of blocks/chunks the problem is split into).

pub mod cholesky;
pub mod dot;
pub mod heat;
pub mod hpccg;
pub mod lulesh;
pub mod matmul;
pub mod nbody;

/// Outcome of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRun {
    /// A numeric digest of the result (compared against references).
    pub checksum: f64,
    /// Number of tasks the kernel spawned.
    pub tasks: u64,
}

/// Asserts two values agree to a relative tolerance.
pub fn assert_close(a: f64, b: f64, rel: f64) {
    let denom = a.abs().max(b.abs()).max(1e-12);
    assert!(
        ((a - b).abs() / denom) < rel,
        "checksums differ: {a} vs {b} (rel {})",
        (a - b).abs() / denom
    );
}

/// Splits `n` items into `parts` near-equal contiguous ranges.
pub(crate) fn chunks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything() {
        for (n, p) in [(10, 3), (7, 7), (5, 9), (100, 1)] {
            let cs = chunks(n, p);
            assert_eq!(cs.first().unwrap().start, 0);
            assert_eq!(cs.last().unwrap().end, n);
            for w in cs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    #[should_panic(expected = "checksums differ")]
    fn assert_close_catches_mismatch() {
        assert_close(1.0, 2.0, 1e-6);
    }
}
