//! A LULESH-style explicit hydrodynamics proxy (1D shock tube).
//!
//! The real LULESH 2.0 is a 3D Lagrangian hydro code; this proxy keeps its
//! *task structure* on a 1D staggered grid: per timestep a stress/force
//! phase over element chunks (reading neighbour chunks), a node-update
//! phase (`inout` on the chunk), and a serial timestep-control reduction —
//! the mixed parallel/serial phase pattern the simulator model mirrors.

use nanos::{shared_mut, NanosRuntime, Region, SharedMut};

use super::{chunks, KernelRun};

const STATE_SPACE: u64 = 70;
const FORCE_SPACE: u64 = 71;
const DT_SPACE: u64 = 72;

const GAMMA: f64 = 1.4;
const CFL: f64 = 0.3;

#[derive(Clone, Copy)]
struct Element {
    /// Velocity at the element's left node.
    vel: f64,
    /// Internal energy.
    energy: f64,
    /// Density.
    rho: f64,
}

fn init_element(i: usize, n: usize) -> Element {
    // Sod-like: high pressure on the left half.
    Element {
        vel: 0.0,
        energy: if i < n / 2 { 2.5 } else { 1.0 },
        rho: if i < n / 2 { 1.0 } else { 0.125 },
    }
}

fn pressure(e: &Element) -> f64 {
    (GAMMA - 1.0) * e.rho * e.energy
}

/// Force on each element boundary from the pressure gradient.
fn compute_forces(
    mine: &[Element],
    left: Option<Element>,
    right: Option<Element>,
    out: &mut [f64],
) {
    let n = mine.len();
    for i in 0..n {
        let pl = if i > 0 {
            pressure(&mine[i - 1])
        } else {
            left.map_or(pressure(&mine[0]), |e| pressure(&e))
        };
        let pr = if i + 1 < n {
            pressure(&mine[i + 1])
        } else {
            right.map_or(pressure(&mine[n - 1]), |e| pressure(&e))
        };
        out[i] = -(pr - pl) * 0.5;
    }
}

fn integrate(mine: &mut [Element], forces: &[f64], dt: f64) {
    for (e, &f) in mine.iter_mut().zip(forces) {
        e.vel += dt * f / e.rho.max(1e-9);
        e.energy = (e.energy + dt * f * e.vel).max(1e-9);
    }
}

/// Runs `steps` hydro steps on `n` elements split into `parts` chunks.
/// Returns the total energy.
pub fn run(nr: &NanosRuntime, n: usize, parts: usize, steps: usize) -> KernelRun {
    let ranges = chunks(n, parts);
    let nc = ranges.len();
    let state: Vec<SharedMut<Vec<Element>>> = ranges
        .iter()
        .map(|r| shared_mut(r.clone().map(|i| init_element(i, n)).collect()))
        .collect();
    let forces: Vec<SharedMut<Vec<f64>>> = ranges
        .iter()
        .map(|r| shared_mut(vec![0.0; r.len()]))
        .collect();
    let dt = shared_mut(0.01f64);
    let dt_region = Region::logical(DT_SPACE, 0);

    let mut tasks = 0u64;
    for _ in 0..steps {
        // Phase 1: forces from the pressure field (neighbour reads).
        for c in 0..nc {
            let mine = state[c].clone();
            let left = (c > 0).then(|| state[c - 1].clone());
            let right = (c + 1 < nc).then(|| state[c + 1].clone());
            let out = forces[c].clone();
            let mut spec = nr
                .task()
                .output(Region::logical(FORCE_SPACE, c as u64))
                .input(Region::logical(STATE_SPACE, c as u64));
            if c > 0 {
                spec = spec.input(Region::logical(STATE_SPACE, c as u64 - 1));
            }
            if c + 1 < nc {
                spec = spec.input(Region::logical(STATE_SPACE, c as u64 + 1));
            }
            spec.body(move || {
                let l = left.map(|s| s.with_read(|v| *v.last().expect("nonempty")));
                let r = right.map(|s| s.with_read(|v| v[0]));
                mine.with_read(|mv| out.with(|ov| compute_forces(mv, l, r, ov)));
            })
            .spawn();
            tasks += 1;
        }
        // Phase 2: integrate using the shared timestep.
        for c in 0..nc {
            let mine = state[c].clone();
            let f = forces[c].clone();
            let dtc = dt.clone();
            nr.task()
                .inout(Region::logical(STATE_SPACE, c as u64))
                .input(Region::logical(FORCE_SPACE, c as u64))
                .input(dt_region)
                .body(move || {
                    let step = dtc.with_read(|v| *v);
                    f.with_read(|fv| mine.with(|mv| integrate(mv, fv, step)));
                })
                .spawn();
            tasks += 1;
        }
        // Phase 3: serial timestep control (CFL-style reduction).
        let all: Vec<_> = state.clone();
        let dtc = dt.clone();
        let mut spec = nr.task().inout(dt_region);
        for c in 0..nc {
            spec = spec.input(Region::logical(STATE_SPACE, c as u64));
        }
        spec.body(move || {
            let max_c: f64 = all
                .iter()
                .map(|s| {
                    s.with_read(|v| {
                        v.iter()
                            .map(|e| (GAMMA * pressure(e) / e.rho.max(1e-9)).sqrt())
                            .fold(0.0f64, f64::max)
                    })
                })
                .fold(0.0f64, f64::max);
            dtc.with(|d| *d = (CFL / max_c.max(1e-9)).min(0.02));
        })
        .spawn();
        tasks += 1;
    }
    nr.taskwait();
    let checksum = state
        .iter()
        .map(|s| s.with(|v| v.iter().map(|e| e.energy).sum::<f64>()))
        .sum();
    KernelRun { checksum, tasks }
}

/// Sequential reference with identical phase ordering.
pub fn reference(n: usize, parts: usize, steps: usize) -> f64 {
    let ranges = chunks(n, parts);
    let mut elems: Vec<Element> = (0..n).map(|i| init_element(i, n)).collect();
    let mut dt = 0.01;
    for _ in 0..steps {
        let snapshot = elems.clone();
        let mut forces = vec![0.0; n];
        for r in &ranges {
            let left = (r.start > 0).then(|| snapshot[r.start - 1]);
            let right = (r.end < n).then(|| snapshot[r.end]);
            compute_forces(&snapshot[r.clone()], left, right, &mut forces[r.clone()]);
        }
        for r in &ranges {
            integrate(&mut elems[r.clone()], &forces[r.clone()], dt);
        }
        let max_c = elems
            .iter()
            .map(|e| (GAMMA * pressure(e) / e.rho.max(1e-9)).sqrt())
            .fold(0.0f64, f64::max);
        dt = (CFL / max_c.max(1e-9)).min(0.02);
    }
    elems.iter().map(|e| e.energy).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;
    use nanos::Backend;

    #[test]
    fn matches_reference() {
        let nr = NanosRuntime::new(Backend::standalone(3));
        let run = run(&nr, 120, 4, 5);
        assert_eq!(run.tasks, 5 * 9);
        assert_close(run.checksum, reference(120, 4, 5), 1e-9);
        nr.shutdown();
    }

    #[test]
    fn chunking_invariant() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let a = run(&nr, 96, 2, 4).checksum;
        let b = run(&nr, 96, 12, 4).checksum;
        assert_close(a, b, 1e-9);
        nr.shutdown();
    }

    #[test]
    fn energy_stays_finite_and_positive() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let e = run(&nr, 64, 4, 20).checksum;
        assert!(e.is_finite() && e > 0.0, "energy {e}");
        nr.shutdown();
    }
}
