//! HPCCG proxy: conjugate gradient on a 1D Poisson operator.
//!
//! A faithful (small) CG: chunked SpMV over the tridiagonal Laplacian,
//! chunked dot products with serial reduction tasks, and chunked AXPY
//! updates — the serial reductions between parallel phases are exactly the
//! BSP structure the paper exploits when co-executing HPCCG (§5.2–5.3).

use std::sync::Arc;

use nanos::{shared_mut, NanosRuntime, Region, SharedMut};

use super::{chunks, KernelRun};

const X_SPACE: u64 = 40;
const R_SPACE: u64 = 41;
const P_SPACE: u64 = 42;
const AP_SPACE: u64 = 43;
const PART_SPACE: u64 = 44;
const SCALAR_SPACE: u64 = 45;

struct ChunkedVec {
    chunks: Vec<SharedMut<Vec<f64>>>,
    space: u64,
}

impl ChunkedVec {
    fn new(ranges: &[std::ops::Range<usize>], space: u64, f: impl Fn(usize) -> f64) -> ChunkedVec {
        ChunkedVec {
            chunks: ranges
                .iter()
                .map(|r| shared_mut(r.clone().map(&f).collect::<Vec<f64>>()))
                .collect(),
            space,
        }
    }

    fn region(&self, c: usize) -> Region {
        Region::logical(self.space, c as u64)
    }
}

/// Runs `iters` CG iterations on an `n`-point 1D Poisson system split into
/// `parts` chunks. Returns the final squared residual norm.
pub fn run(nr: &NanosRuntime, n: usize, parts: usize, iters: usize) -> KernelRun {
    let ranges = Arc::new(chunks(n, parts));
    let nc = ranges.len();
    // b = A * ones  =>  solution is the ones vector; x0 = 0, r0 = p0 = b.
    let bval = |i: usize| {
        let mut v = 2.0;
        if i > 0 {
            v -= 1.0;
        }
        if i + 1 < n {
            v -= 1.0;
        }
        v
    };
    let x = ChunkedVec::new(&ranges, X_SPACE, |_| 0.0);
    let r = ChunkedVec::new(&ranges, R_SPACE, bval);
    let p = ChunkedVec::new(&ranges, P_SPACE, bval);
    let ap = ChunkedVec::new(&ranges, AP_SPACE, |_| 0.0);
    let partials: Vec<_> = (0..nc).map(|_| shared_mut(0.0f64)).collect();
    // Scalars: [rr, pap, rr_new] as one task-serialized record.
    let scalars = shared_mut([0.0f64; 3]);
    let scalar_region = Region::logical(SCALAR_SPACE, 0);

    let mut tasks = 0u64;

    // rr0 = r . r
    reduce_dot(nr, &r, &r, &partials, &scalars, 0, &mut tasks);

    for _ in 0..iters {
        // Ap = A p (chunked stencil SpMV; neighbors via `in` deps).
        for c in 0..nc {
            let pc = p.chunks[c].clone();
            let left = (c > 0).then(|| p.chunks[c - 1].clone());
            let right = (c + 1 < nc).then(|| p.chunks[c + 1].clone());
            let out = ap.chunks[c].clone();
            let range = ranges[c].clone();
            let n_total = n;
            let mut spec = nr.task().output(ap.region(c)).input(p.region(c));
            if c > 0 {
                spec = spec.input(p.region(c - 1));
            }
            if c + 1 < nc {
                spec = spec.input(p.region(c + 1));
            }
            spec.body(move || {
                let lb = left.map(|l| l.with_read(|v| *v.last().expect("nonempty")));
                let rb = right.map(|r| r.with_read(|v| v[0]));
                pc.with_read(|pv| {
                    out.with(|ov| {
                        for (k, i) in range.clone().enumerate() {
                            let up = if k > 0 { pv[k - 1] } else { lb.unwrap_or(0.0) };
                            let down = if k + 1 < pv.len() {
                                pv[k + 1]
                            } else {
                                rb.unwrap_or(0.0)
                            };
                            let _ = i;
                            let _ = n_total;
                            ov[k] = 2.0 * pv[k] - up - down;
                        }
                    })
                });
            })
            .spawn();
            tasks += 1;
        }
        // pap = p . Ap
        reduce_dot(nr, &p, &ap, &partials, &scalars, 1, &mut tasks);
        // x += alpha p; r -= alpha Ap  (alpha = rr / pap)
        for c in 0..nc {
            let xc = x.chunks[c].clone();
            let rc = r.chunks[c].clone();
            let pc = p.chunks[c].clone();
            let apc = ap.chunks[c].clone();
            let sc = scalars.clone();
            nr.task()
                .inout(x.region(c))
                .inout(r.region(c))
                .input(p.region(c))
                .input(ap.region(c))
                .input(scalar_region)
                .body(move || {
                    let (rr, pap) = sc.with_read(|s| (s[0], s[1]));
                    let alpha = if pap != 0.0 { rr / pap } else { 0.0 };
                    pc.with_read(|pv| {
                        xc.with(|xv| {
                            for k in 0..xv.len() {
                                xv[k] += alpha * pv[k];
                            }
                        })
                    });
                    apc.with_read(|av| {
                        rc.with(|rv| {
                            for k in 0..rv.len() {
                                rv[k] -= alpha * av[k];
                            }
                        })
                    });
                })
                .spawn();
            tasks += 1;
        }
        // rr_new = r . r
        reduce_dot(nr, &r, &r, &partials, &scalars, 2, &mut tasks);
        // p = r + beta p (beta = rr_new / rr), then rr <- rr_new.
        for c in 0..nc {
            let rc = r.chunks[c].clone();
            let pc = p.chunks[c].clone();
            let sc = scalars.clone();
            nr.task()
                .inout(p.region(c))
                .input(r.region(c))
                .input(scalar_region)
                .body(move || {
                    let (rr, rr_new) = sc.with_read(|s| (s[0], s[2]));
                    let beta = if rr != 0.0 { rr_new / rr } else { 0.0 };
                    rc.with_read(|rv| {
                        pc.with(|pv| {
                            for k in 0..pv.len() {
                                pv[k] = rv[k] + beta * pv[k];
                            }
                        })
                    });
                })
                .spawn();
            tasks += 1;
        }
        // rr <- rr_new (serial bookkeeping task).
        let sc = scalars.clone();
        nr.task()
            .inout(scalar_region)
            .body(move || sc.with(|s| s[0] = s[2]))
            .spawn();
        tasks += 1;
    }
    nr.taskwait();
    KernelRun {
        checksum: scalars.with(|s| s[0]),
        tasks,
    }
}

/// Chunked dot product of `a . b` into `scalars[slot]`.
fn reduce_dot(
    nr: &NanosRuntime,
    a: &ChunkedVec,
    b: &ChunkedVec,
    partials: &[SharedMut<f64>],
    scalars: &SharedMut<[f64; 3]>,
    slot: usize,
    tasks: &mut u64,
) {
    let nc = partials.len();
    for (c, partial) in partials.iter().enumerate() {
        let ac = a.chunks[c].clone();
        let bc = b.chunks[c].clone();
        let pt = partial.clone();
        nr.task()
            .output(Region::logical(PART_SPACE, c as u64))
            .input(a.region(c))
            .input(b.region(c))
            .body(move || {
                // `a . a` must not nest `with` on the same cell.
                let s: f64 = if ac.same_cell(&bc) {
                    ac.with_read(|av| av.iter().map(|x| x * x).sum())
                } else {
                    ac.with_read(|av| {
                        bc.with_read(|bv| av.iter().zip(bv.iter()).map(|(x, y)| x * y).sum())
                    })
                };
                pt.with(|v| *v = s);
            })
            .spawn();
        *tasks += 1;
    }
    let ps: Vec<_> = partials.to_vec();
    let sc = scalars.clone();
    let mut spec = nr.task().inout(Region::logical(SCALAR_SPACE, 0));
    for c in 0..nc {
        spec = spec.input(Region::logical(PART_SPACE, c as u64));
    }
    spec.body(move || {
        let total: f64 = ps.iter().map(|p| p.with_read(|v| *v)).sum();
        sc.with(|s| s[slot] = total);
    })
    .spawn();
    *tasks += 1;
}

/// Sequential reference CG with identical chunked summation order.
pub fn reference(n: usize, parts: usize, iters: usize) -> f64 {
    let ranges = chunks(n, parts);
    let chunked_dot = |a: &[f64], b: &[f64]| -> f64 {
        ranges
            .iter()
            .map(|r| r.clone().map(|i| a[i] * b[i]).sum::<f64>())
            .sum()
    };
    let bval = |i: usize| {
        let mut v = 2.0;
        if i > 0 {
            v -= 1.0;
        }
        if i + 1 < n {
            v -= 1.0;
        }
        v
    };
    let mut x = vec![0.0; n];
    let mut r: Vec<f64> = (0..n).map(bval).collect();
    let mut p = r.clone();
    let mut rr = chunked_dot(&r, &r);
    for _ in 0..iters {
        let ap: Vec<f64> = (0..n)
            .map(|i| {
                let up = if i > 0 { p[i - 1] } else { 0.0 };
                let down = if i + 1 < n { p[i + 1] } else { 0.0 };
                2.0 * p[i] - up - down
            })
            .collect();
        let pap = chunked_dot(&p, &ap);
        let alpha = if pap != 0.0 { rr / pap } else { 0.0 };
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new = chunked_dot(&r, &r);
        let beta = if rr != 0.0 { rr_new / rr } else { 0.0 };
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
    }
    rr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;
    use nanos::Backend;

    #[test]
    fn matches_reference() {
        let nr = NanosRuntime::new(Backend::standalone(3));
        let run = run(&nr, 256, 4, 5);
        assert_close(run.checksum, reference(256, 4, 5), 1e-9);
        nr.shutdown();
    }

    #[test]
    fn residual_decreases() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let r1 = run(&nr, 128, 4, 1).checksum;
        let r10 = run(&nr, 128, 4, 10).checksum;
        assert!(
            r10 < r1,
            "CG must make progress: rr after 10 iters {r10} vs after 1 {r1}"
        );
        nr.shutdown();
    }

    #[test]
    fn runs_on_nosv_backend() {
        let rt = nosv::Runtime::builder().cpus(2).build().expect("valid");
        let app = rt.attach("hpccg").expect("attach");
        let nr = NanosRuntime::new(Backend::nosv(app));
        let run = run(&nr, 128, 4, 3);
        assert_close(run.checksum, reference(128, 4, 3), 1e-9);
        nr.shutdown();
        rt.shutdown();
    }
}
