//! N-Body simulation: all-pairs gravity, chunked particles.
//!
//! Per step, a force task per chunk reads *every* position chunk (`in` on
//! all of them) and writes its force chunk; an update task per chunk then
//! integrates positions and velocities (`inout`). Compute-bound with a
//! dense dependency fan-in — the paper's bandwidth-frugal benchmark.

use nanos::{shared_mut, NanosRuntime, Region, SharedMut};

use super::{chunks, KernelRun};

const POS_SPACE: u64 = 50;
const FORCE_SPACE: u64 = 51;

const SOFTENING: f64 = 1e-3;
const DT: f64 = 0.01;

#[derive(Clone, Copy)]
struct Body {
    pos: [f64; 3],
    vel: [f64; 3],
    mass: f64,
}

fn init_body(i: usize) -> Body {
    // Deterministic pseudo-random cloud.
    let h = |k: usize| (((i * 2654435761 + k * 40503) % 1000) as f64) / 500.0 - 1.0;
    Body {
        pos: [h(1), h(2), h(3)],
        vel: [0.1 * h(4), 0.1 * h(5), 0.1 * h(6)],
        mass: 1.0 + 0.5 * (h(7) + 1.0),
    }
}

fn accumulate_forces(targets: &[Body], all: &[Vec<Body>], out: &mut [[f64; 3]]) {
    for (t, body) in targets.iter().enumerate() {
        let mut f = [0.0f64; 3];
        for chunk in all {
            for other in chunk {
                let dx = other.pos[0] - body.pos[0];
                let dy = other.pos[1] - body.pos[1];
                let dz = other.pos[2] - body.pos[2];
                let d2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                let inv = other.mass / (d2 * d2.sqrt());
                f[0] += dx * inv;
                f[1] += dy * inv;
                f[2] += dz * inv;
            }
        }
        out[t] = f;
    }
}

fn integrate(bodies: &mut [Body], forces: &[[f64; 3]]) {
    for (b, f) in bodies.iter_mut().zip(forces) {
        for (d, &fd) in f.iter().enumerate() {
            b.vel[d] += DT * fd;
            b.pos[d] += DT * b.vel[d];
        }
    }
}

/// Runs `steps` of an `n`-body simulation split into `parts` chunks.
/// Returns the sum of all position coordinates.
pub fn run(nr: &NanosRuntime, n: usize, parts: usize, steps: usize) -> KernelRun {
    let ranges = chunks(n, parts);
    let nc = ranges.len();
    let bodies: Vec<SharedMut<Vec<Body>>> = ranges
        .iter()
        .map(|r| shared_mut(r.clone().map(init_body).collect()))
        .collect();
    let forces: Vec<SharedMut<Vec<[f64; 3]>>> = ranges
        .iter()
        .map(|r| shared_mut(vec![[0.0; 3]; r.len()]))
        .collect();

    let mut tasks = 0u64;
    for _ in 0..steps {
        for c in 0..nc {
            let mine = bodies[c].clone();
            let all: Vec<_> = bodies.clone();
            let out = forces[c].clone();
            let mut spec = nr.task().output(Region::logical(FORCE_SPACE, c as u64));
            for other in 0..nc {
                spec = spec.input(Region::logical(POS_SPACE, other as u64));
            }
            spec.body(move || {
                // Snapshot every chunk (cheap copies; exclusivity of the
                // snapshot reads is guaranteed by the `in` dependencies).
                let snapshot: Vec<Vec<Body>> =
                    all.iter().map(|b| b.with_read(|v| v.clone())).collect();
                mine.with_read(|tv| {
                    out.with(|ov| accumulate_forces(tv, &snapshot, ov));
                });
            })
            .spawn();
            tasks += 1;
        }
        for c in 0..nc {
            let mine = bodies[c].clone();
            let f = forces[c].clone();
            nr.task()
                .inout(Region::logical(POS_SPACE, c as u64))
                .input(Region::logical(FORCE_SPACE, c as u64))
                .body(move || {
                    f.with(|fv| mine.with(|bv| integrate(bv, fv)));
                })
                .spawn();
            tasks += 1;
        }
    }
    nr.taskwait();
    let checksum = bodies
        .iter()
        .map(|b| b.with(|v| v.iter().map(|x| x.pos.iter().sum::<f64>()).sum::<f64>()))
        .sum();
    KernelRun { checksum, tasks }
}

/// Sequential reference with the identical chunked iteration order.
pub fn reference(n: usize, parts: usize, steps: usize) -> f64 {
    let ranges = chunks(n, parts);
    let mut chunks_data: Vec<Vec<Body>> = ranges
        .iter()
        .map(|r| r.clone().map(init_body).collect())
        .collect();
    for _ in 0..steps {
        let snapshot = chunks_data.clone();
        let mut all_forces: Vec<Vec<[f64; 3]>> = Vec::with_capacity(chunks_data.len());
        for chunk in &chunks_data {
            let mut f = vec![[0.0; 3]; chunk.len()];
            accumulate_forces(chunk, &snapshot, &mut f);
            all_forces.push(f);
        }
        for (chunk, f) in chunks_data.iter_mut().zip(&all_forces) {
            integrate(chunk, f);
        }
    }
    chunks_data
        .iter()
        .flatten()
        .map(|b| b.pos.iter().sum::<f64>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;
    use nanos::Backend;

    #[test]
    fn matches_reference() {
        let nr = NanosRuntime::new(Backend::standalone(3));
        let run = run(&nr, 96, 4, 3);
        assert_eq!(run.tasks, 3 * 8);
        assert_close(run.checksum, reference(96, 4, 3), 1e-9);
        nr.shutdown();
    }

    #[test]
    fn chunking_does_not_change_physics() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let a = run(&nr, 64, 2, 2).checksum;
        let b = run(&nr, 64, 8, 2).checksum;
        // Identical force order within a particle; only partitioning of the
        // outer loops differs.
        assert_close(a, b, 1e-9);
        nr.shutdown();
    }

    #[test]
    fn bodies_actually_move() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        let start = reference(32, 1, 0);
        let end = run(&nr, 32, 4, 5).checksum;
        assert!((end - start).abs() > 1e-9, "no motion detected");
        nr.shutdown();
    }
}
