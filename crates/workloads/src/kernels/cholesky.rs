//! Tiled right-looking Cholesky factorization (`A = L Lᵀ`).
//!
//! The classic four-kernel task graph: `potrf` on the diagonal tile,
//! `trsm` down the panel, `syrk` on diagonal trailing tiles and `gemm` on
//! off-diagonal trailing tiles, with dependencies declared per tile. The
//! trailing-submatrix structure gives the decaying parallelism the
//! evaluation discusses for Cholesky.

use nanos::{shared_mut, NanosRuntime, Region, SharedMut};

use super::KernelRun;

const TILE_SPACE: u64 = 60;

/// Symmetric positive-definite test matrix entry.
fn spd_entry(r: usize, c: usize, n: usize) -> f64 {
    let base = 1.0 / (1.0 + (r as f64 - c as f64).abs());
    if r == c {
        base + n as f64
    } else {
        base
    }
}

struct Tiled {
    tiles: Vec<SharedMut<Vec<f64>>>,
    nb: usize,
}

impl Tiled {
    fn build(nb: usize, bs: usize) -> Tiled {
        let n = nb * bs;
        let tiles = (0..nb * nb)
            .map(|t| {
                let (ti, tj) = (t / nb, t % nb);
                let mut v = vec![0.0; bs * bs];
                for r in 0..bs {
                    for c in 0..bs {
                        v[r * bs + c] = spd_entry(ti * bs + r, tj * bs + c, n);
                    }
                }
                shared_mut(v)
            })
            .collect();
        let _ = bs;
        Tiled { tiles, nb }
    }

    fn tile(&self, i: usize, j: usize) -> &SharedMut<Vec<f64>> {
        &self.tiles[i * self.nb + j]
    }

    fn region(&self, i: usize, j: usize) -> Region {
        Region::logical(TILE_SPACE, (i * self.nb + j) as u64)
    }
}

/// In-place Cholesky of one `bs x bs` tile (lower triangle).
fn potrf(a: &mut [f64], bs: usize) {
    for j in 0..bs {
        let mut d = a[j * bs + j];
        for k in 0..j {
            d -= a[j * bs + k] * a[j * bs + k];
        }
        assert!(d > 0.0, "matrix not positive definite");
        let d = d.sqrt();
        a[j * bs + j] = d;
        for i in j + 1..bs {
            let mut s = a[i * bs + j];
            for k in 0..j {
                s -= a[i * bs + k] * a[j * bs + k];
            }
            a[i * bs + j] = s / d;
        }
        for i in 0..j {
            a[i * bs + j] = 0.0; // zero the upper triangle for clarity
        }
    }
}

/// `b <- b * l^{-T}` for the lower-triangular diagonal tile `l`.
fn trsm(l: &[f64], b: &mut [f64], bs: usize) {
    for i in 0..bs {
        for j in 0..bs {
            let mut s = b[i * bs + j];
            for k in 0..j {
                s -= b[i * bs + k] * l[j * bs + k];
            }
            b[i * bs + j] = s / l[j * bs + j];
        }
    }
}

/// `c <- c - a * aᵀ` (symmetric rank-k update; full tile computed).
fn syrk(a: &[f64], c: &mut [f64], bs: usize) {
    for i in 0..bs {
        for j in 0..bs {
            let mut s = 0.0;
            for k in 0..bs {
                s += a[i * bs + k] * a[j * bs + k];
            }
            c[i * bs + j] -= s;
        }
    }
}

/// `c <- c - a * bᵀ`.
fn gemm_nt(a: &[f64], b: &[f64], c: &mut [f64], bs: usize) {
    for i in 0..bs {
        for j in 0..bs {
            let mut s = 0.0;
            for k in 0..bs {
                s += a[i * bs + k] * b[j * bs + k];
            }
            c[i * bs + j] -= s;
        }
    }
}

/// Factorizes an `nb x nb`-tile SPD matrix in place; returns the sum of the
/// resulting `L` entries (lower triangle).
pub fn run(nr: &NanosRuntime, nb: usize, bs: usize) -> KernelRun {
    let a = Tiled::build(nb, bs);
    let mut tasks = 0u64;
    for k in 0..nb {
        {
            let t = a.tile(k, k).clone();
            let bs2 = bs;
            nr.task()
                .inout(a.region(k, k))
                .body(move || t.with(|v| potrf(v, bs2)))
                .spawn();
            tasks += 1;
        }
        for i in k + 1..nb {
            let l = a.tile(k, k).clone();
            let b = a.tile(i, k).clone();
            let bs2 = bs;
            nr.task()
                .input(a.region(k, k))
                .inout(a.region(i, k))
                .body(move || l.with_read(|lv| b.with(|bv| trsm(lv, bv, bs2))))
                .spawn();
            tasks += 1;
        }
        for i in k + 1..nb {
            {
                let p = a.tile(i, k).clone();
                let c = a.tile(i, i).clone();
                let bs2 = bs;
                nr.task()
                    .input(a.region(i, k))
                    .inout(a.region(i, i))
                    .body(move || p.with_read(|pv| c.with(|cv| syrk(pv, cv, bs2))))
                    .spawn();
                tasks += 1;
            }
            for j in k + 1..i {
                let pi = a.tile(i, k).clone();
                let pj = a.tile(j, k).clone();
                let c = a.tile(i, j).clone();
                let bs2 = bs;
                nr.task()
                    .input(a.region(i, k))
                    .input(a.region(j, k))
                    .inout(a.region(i, j))
                    .body(move || {
                        pi.with_read(|iv| pj.with_read(|jv| c.with(|cv| gemm_nt(iv, jv, cv, bs2))))
                    })
                    .spawn();
                tasks += 1;
            }
        }
    }
    nr.taskwait();
    // Checksum: sum of the lower-triangular factor.
    let mut checksum = 0.0;
    for i in 0..nb {
        for j in 0..=i {
            checksum += a.tile(i, j).with(|v| {
                if i == j {
                    let mut s = 0.0;
                    for r in 0..bs {
                        for c in 0..=r {
                            s += v[r * bs + c];
                        }
                    }
                    s
                } else {
                    v.iter().sum::<f64>()
                }
            });
        }
    }
    KernelRun { checksum, tasks }
}

/// Sequential dense Cholesky of the same matrix; returns the same checksum.
pub fn reference(nb: usize, bs: usize) -> f64 {
    let n = nb * bs;
    let mut a: Vec<f64> = (0..n * n).map(|t| spd_entry(t / n, t % n, n)).collect();
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        let d = d.sqrt();
        a[j * n + j] = d;
        for i in j + 1..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / d;
        }
    }
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..=i {
            sum += a[i * n + j];
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;
    use nanos::Backend;

    #[test]
    fn matches_dense_reference() {
        let nr = NanosRuntime::new(Backend::standalone(3));
        let run = run(&nr, 3, 8);
        // nb=3: 3 potrf + 3 trsm + 3 syrk + 1 gemm = 10 tasks.
        assert_eq!(run.tasks, 10);
        assert_close(run.checksum, reference(3, 8), 1e-9);
        nr.shutdown();
    }

    #[test]
    fn factor_reconstructs_the_matrix() {
        // L Lᵀ must reproduce A: verify on the dense reference path by
        // recomputing A from the factor produced by the task version.
        let nb = 2;
        let bs = 6;
        let n = nb * bs;
        let nr = NanosRuntime::new(Backend::standalone(2));
        let task_sum = run(&nr, nb, bs).checksum;
        let ref_sum = reference(nb, bs);
        assert_close(task_sum, ref_sum, 1e-9);
        // And the reference factor truly reconstructs A.
        let mut a: Vec<f64> = (0..n * n).map(|t| spd_entry(t / n, t % n, n)).collect();
        let orig = a.clone();
        for j in 0..n {
            let mut d = a[j * n + j];
            for k in 0..j {
                d -= a[j * n + k] * a[j * n + k];
            }
            let d = d.sqrt();
            a[j * n + j] = d;
            for i in j + 1..n {
                let mut s = a[i * n + j];
                for k in 0..j {
                    s -= a[i * n + k] * a[j * n + k];
                }
                a[i * n + j] = s / d;
            }
        }
        for r in 0..n {
            for c in 0..=r {
                let mut s = 0.0;
                for k in 0..n {
                    let l1 = if k <= r { a[r * n + k] } else { 0.0 };
                    let l2 = if k <= c { a[c * n + k] } else { 0.0 };
                    s += l1 * l2;
                }
                assert!(
                    (s - orig[r * n + c]).abs() < 1e-8,
                    "reconstruction mismatch at ({r},{c}): {s} vs {}",
                    orig[r * n + c]
                );
            }
        }
        nr.shutdown();
    }

    #[test]
    fn larger_tiling_matches_too() {
        let nr = NanosRuntime::new(Backend::standalone(4));
        assert_close(run(&nr, 4, 4).checksum, reference(4, 4), 1e-9);
        nr.shutdown();
    }
}
