//! Blocked dense matrix multiplication `C = A x B`.
//!
//! The matrix is tiled into `nb x nb` blocks of `bs x bs` doubles. One task
//! per `(i, j, k)` updates tile `C[i][j] += A[i][k] * B[k][j]`; the `inout`
//! dependency on `C[i][j]` chains the `k` loop while distinct `(i, j)`
//! tiles proceed in parallel — the canonical OmpSs-2 GEMM task graph.

use nanos::{shared_mut, NanosRuntime, Region, SharedMut};

use super::KernelRun;

/// A tiled square matrix of `nb x nb` tiles, each `bs x bs`, row-major.
pub struct TiledMatrix {
    /// Tiles in row-major tile order.
    pub tiles: Vec<SharedMut<Vec<f64>>>,
    /// Tiles per side.
    pub nb: usize,
    /// Tile side length.
    pub bs: usize,
}

impl TiledMatrix {
    /// Builds an `nb x nb`-tile matrix filled by `f(row, col)`.
    pub fn from_fn(nb: usize, bs: usize, f: impl Fn(usize, usize) -> f64) -> TiledMatrix {
        let n = nb * bs;
        let _ = n;
        let tiles = (0..nb * nb)
            .map(|t| {
                let (ti, tj) = (t / nb, t % nb);
                let mut data = vec![0.0; bs * bs];
                for r in 0..bs {
                    for c in 0..bs {
                        data[r * bs + c] = f(ti * bs + r, tj * bs + c);
                    }
                }
                shared_mut(data)
            })
            .collect();
        TiledMatrix { tiles, nb, bs }
    }

    /// The tile at tile coordinates `(i, j)`.
    pub fn tile(&self, i: usize, j: usize) -> &SharedMut<Vec<f64>> {
        &self.tiles[i * self.nb + j]
    }

    /// Dependency region for tile `(i, j)` in logical space `space`.
    pub fn region(&self, space: u64, i: usize, j: usize) -> Region {
        Region::logical(space, (i * self.nb + j) as u64)
    }

    /// Sum of all entries (checksum).
    pub fn checksum(&self) -> f64 {
        self.tiles
            .iter()
            .map(|t| t.with_read(|v| v.iter().sum::<f64>()))
            .sum()
    }
}

/// `bs x bs` tile GEMM: `c += a * b`.
fn gemm_tile(a: &[f64], b: &[f64], c: &mut [f64], bs: usize) {
    for i in 0..bs {
        for k in 0..bs {
            let aik = a[i * bs + k];
            let (brow, crow) = (&b[k * bs..(k + 1) * bs], &mut c[i * bs..(i + 1) * bs]);
            for j in 0..bs {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// Runs the blocked multiplication on `nr`; returns the checksum of `C`.
///
/// `nb` controls the task granularity: the kernel spawns `nb^3` tasks over
/// a fixed `nb * bs` problem side.
pub fn run(nr: &NanosRuntime, nb: usize, bs: usize) -> KernelRun {
    let a = TiledMatrix::from_fn(nb, bs, |r, c| ((r * 7 + c * 3) % 13) as f64 * 0.25);
    let b = TiledMatrix::from_fn(nb, bs, |r, c| ((r * 5 + c * 11) % 17) as f64 * 0.125);
    let c = TiledMatrix::from_fn(nb, bs, |_, _| 0.0);

    const C_SPACE: u64 = 10;
    let mut tasks = 0u64;
    for i in 0..nb {
        for j in 0..nb {
            for k in 0..nb {
                let at = a.tile(i, k).clone();
                let bt = b.tile(k, j).clone();
                let ct = c.tile(i, j).clone();
                let bs2 = bs;
                nr.task()
                    .inout(c.region(C_SPACE, i, j))
                    .body(move || {
                        at.with_read(|av| {
                            bt.with_read(|bv| ct.with(|cv| gemm_tile(av, bv, cv, bs2)))
                        });
                    })
                    .spawn();
                tasks += 1;
            }
        }
    }
    nr.taskwait();
    KernelRun {
        checksum: c.checksum(),
        tasks,
    }
}

/// Sequential reference for the same generated inputs.
pub fn reference(nb: usize, bs: usize) -> f64 {
    let n = nb * bs;
    let a: Vec<f64> = (0..n * n)
        .map(|t| ((t / n * 7 + t % n * 3) % 13) as f64 * 0.25)
        .collect();
    let b: Vec<f64> = (0..n * n)
        .map(|t| ((t / n * 5 + t % n * 11) % 17) as f64 * 0.125)
        .collect();
    let mut sum = 0.0;
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                sum += aik * b[k * n + j];
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;
    use nanos::Backend;

    #[test]
    fn matches_reference_on_standalone() {
        let nr = NanosRuntime::new(Backend::standalone(3));
        let run = run(&nr, 3, 8);
        assert_eq!(run.tasks, 27);
        assert_close(run.checksum, reference(3, 8), 1e-9);
        nr.shutdown();
    }

    #[test]
    fn matches_reference_on_nosv_backend() {
        let rt = nosv::Runtime::builder().cpus(3).build().expect("valid");
        let app = rt.attach("matmul").expect("attach");
        let nr = NanosRuntime::new(Backend::nosv(app));
        let run = run(&nr, 2, 8);
        assert_close(run.checksum, reference(2, 8), 1e-9);
        nr.shutdown();
        rt.shutdown();
    }

    #[test]
    fn granularity_does_not_change_the_result() {
        let nr = NanosRuntime::new(Backend::standalone(2));
        // 4 tiles of 4 vs 2 tiles of 8: same matrix content, same product.
        let coarse = run(&nr, 2, 8).checksum;
        let fine = run(&nr, 4, 4).checksum;
        assert_close(coarse, fine, 1e-9);
        nr.shutdown();
    }
}
