//! Model-checked protocol suites for `nosv-shmem` (run via `nosv-check`).
//!
//! The segment-resident protocols — the MPSC submit ring, the idle-CPU
//! claim table and the process-registry join state machine — are compiled
//! against `nosv_sync::hint`, so under the `model` feature every atomic
//! operation is a preemption point and the checker can enumerate or sample
//! interleavings. Each schedule builds a fresh heap-backed segment,
//! runs one bounded scenario and asserts its invariant:
//!
//! * **SubmitRing** — every pushed value is popped exactly once, in FIFO
//!   order per producer;
//! * **SubmitRing::push_n** — the reserve-N batch push hands out each
//!   accepted slot exactly once across wraparound (no slot resurrection)
//!   and never reorders a producer's accepted prefix;
//! * **LaneRing** — per-lane exactly-once under lane-claim races (two
//!   producers hashed to one lane) and no task stranded behind a cleared
//!   dirty bit (mark-after-push vs. swap-before-drain);
//! * **stranded-slot repair** — a producer dying mid-push (claimed
//!   position, unpublished sequence word; or published lane entry with no
//!   dirty-mark) wedges nothing permanently: `repair_stranded` retires
//!   the corpse's claims, recovers every published value exactly once and
//!   leaves the ring reusable;
//! * **batch split** — the ready-counter discipline around a split batch
//!   (ring prefix + locked overflow, counter *not* rolled back) never
//!   strands work invisibly: a server woken by the counter finds every
//!   task, and the counter returns to zero;
//! * **ClaimTable** — an armed slot is won by exactly one claimer, and the
//!   owner's disarm observes exactly the winning deposit;
//! * **registry** — the join handshake's `Requested → Active` ack and the
//!   sweeper's `Requested → Dead` crash-reclaim are mutually exclusive,
//!   and a reclaimed slot cannot be resurrected or corrupted by stale
//!   operations keyed to the dead process.
//!
//! Run with:
//!
//! ```text
//! cargo test -p nosv-shmem --features model --test model
//! ```
//!
//! On failure the checker prints a `NOSV_CHECK_SEED`/`NOSV_CHECK_SCHEDULE`
//! pair; exporting both replays exactly the failing schedule.

#![cfg(feature = "model")]

use std::sync::Arc;

use nosv_check::{explore, Config, Report, Strategy};
use nosv_shmem::{ClaimTable, JoinState, LaneRing, SegmentConfig, ShmSegment, SubmitRing};
use nosv_sync::hint::{thread, AtomicU64, Mutex, Ordering};

/// Prints a one-line exploration summary (visible with `--nocapture`).
fn summarize(name: &str, r: &Report) {
    eprintln!(
        "{name}: {} schedules ({} distinct{}), {} failures",
        r.schedules,
        r.distinct_schedules,
        if r.complete { ", complete" } else { "" },
        r.failures.len(),
    );
}

/// Asserts the sampled schedules were overwhelmingly distinct.
fn assert_mostly_distinct(r: &Report) {
    assert!(
        r.distinct_schedules * 10 >= r.schedules * 9,
        "only {} of {} schedules distinct: scenario too small for sampling",
        r.distinct_schedules,
        r.schedules
    );
}

fn seg() -> ShmSegment {
    // Smallest geometry that still fits a couple of chunks: one fresh
    // segment is zeroed per schedule, so size directly scales suite time.
    ShmSegment::create(SegmentConfig {
        size: 256 * 1024,
        max_cpus: 2,
    })
}

fn ring(seg: &ShmSegment, capacity: usize) -> &SubmitRing {
    let off = seg
        .alloc_zeroed(std::mem::size_of::<SubmitRing>(), 0)
        .expect("segment has room for a ring header");
    // SAFETY: freshly allocated, zeroed, in-bounds; SubmitRing is zero-valid.
    let r: &SubmitRing = unsafe { seg.sref(off.cast()) };
    r.init(seg, capacity).unwrap();
    r
}

// ---------------------------------------------------------------------------
// SubmitRing: exactly-once, FIFO per producer
// ---------------------------------------------------------------------------

/// `producers` threads each push `per_producer` tagged values (retrying
/// while the ring is full); the main virtual thread is the single
/// consumer. Invariants: every value arrives exactly once and each
/// producer's values arrive in push order.
fn ring_round(producers: usize, per_producer: u64, capacity: usize) {
    let s = seg();
    let r = ring(&s, capacity);
    let addr = r as *const SubmitRing as usize;
    let total = producers as u64 * per_producer;

    let handles: Vec<_> = (0..producers as u64)
        .map(|p| {
            let s = s.clone();
            thread::spawn(move || {
                // SAFETY: the ring lives in the segment mapping, which the
                // cloned handle keeps alive for the thread's lifetime.
                let r = unsafe { &*(addr as *const SubmitRing) };
                for i in 0..per_producer {
                    let value = 100 * (p + 1) + i;
                    while !r.push(&s, value) {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let mut popped = Vec::with_capacity(total as usize);
    while popped.len() < total as usize {
        match r.pop(&s) {
            Some(v) => popped.push(v),
            None => thread::yield_now(),
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(r.pop(&s), None, "ring must be empty after draining");

    // Exactly once: the popped multiset equals the pushed set.
    let mut sorted = popped.clone();
    sorted.sort_unstable();
    let expected: Vec<u64> = (1..=producers as u64)
        .flat_map(|p| (0..per_producer).map(move |i| 100 * p + i))
        .collect();
    assert_eq!(sorted, expected, "lost or duplicated values");

    // FIFO per producer: each producer's values appear in push order.
    for p in 1..=producers as u64 {
        let seq: Vec<u64> = popped.iter().copied().filter(|v| v / 100 == p).collect();
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "producer {p} values reordered: {seq:?}"
        );
    }
}

/// Randomized sweep: two producers contending for a two-slot ring, so
/// wraparound and the full-ring fail-retry path are both exercised.
#[test]
fn ring_exactly_once_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 4000 });
    let r = explore(cfg, || ring_round(2, 2, 2)).assert_ok();
    summarize("ring_exactly_once_random", &r);
    assert_mostly_distinct(&r);
}

/// Bounded DFS of the single-producer case (two values through a two-slot
/// ring against a concurrent consumer).
#[test]
fn ring_spsc_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 2500,
    });
    let r = explore(cfg, || ring_round(1, 2, 2)).assert_ok();
    summarize("ring_spsc_dfs", &r);
}

// ---------------------------------------------------------------------------
// SubmitRing::push_n: reserve-N without slot resurrection
// ---------------------------------------------------------------------------

/// One producer feeds `1..=total` through retrying `push_n` calls over the
/// remaining suffix while the consumer pops concurrently from a
/// `capacity`-slot ring. The concurrent pops advance `head` mid-reservation
/// and force wraparound, so every reserve-N edge is hit: stale-tail retry,
/// partial acceptance, slot reuse. Invariant: the consumer sees exactly
/// `1, 2, …, total` in order — a resurrected (reused-slot) value, a
/// double-handed slot or a dropped suffix all break the sequence.
fn push_n_round(total: u64, capacity: usize) {
    let s = seg();
    let r = ring(&s, capacity);
    let addr = r as *const SubmitRing as usize;

    let producer = {
        let s = s.clone();
        thread::spawn(move || {
            // SAFETY: the ring lives in the segment mapping, which the
            // cloned handle keeps alive for the thread's lifetime.
            let r = unsafe { &*(addr as *const SubmitRing) };
            let values: Vec<u64> = (1..=total).collect();
            let mut idx = 0usize;
            while idx < values.len() {
                let k = r.push_n(&s, &values[idx..]);
                if k == 0 {
                    thread::yield_now();
                }
                idx += k;
            }
        })
    };

    let mut popped = Vec::with_capacity(total as usize);
    while popped.len() < total as usize {
        match r.pop(&s) {
            Some(v) => popped.push(v),
            None => thread::yield_now(),
        }
    }
    producer.join().unwrap();
    assert_eq!(r.pop(&s), None, "ring must be empty after draining");
    let expected: Vec<u64> = (1..=total).collect();
    assert_eq!(
        popped, expected,
        "reserve-N lost, duplicated or resurrected a slot"
    );
}

/// Randomized sweep: five values through a two-slot ring (two-plus wraps,
/// every call a potential split).
#[test]
fn push_n_no_slot_resurrection_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 4000 });
    let r = explore(cfg, || push_n_round(5, 2)).assert_ok();
    summarize("push_n_no_slot_resurrection_random", &r);
    assert_mostly_distinct(&r);
}

/// Bounded DFS of the minimal split (three values, two slots: the first
/// call must be accepted partially or retried against a moving head).
#[test]
fn push_n_split_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 4000,
    });
    let r = explore(cfg, || push_n_round(3, 2)).assert_ok();
    summarize("push_n_split_dfs", &r);
}

// ---------------------------------------------------------------------------
// LaneRing: per-lane exactly-once, no task stranded behind a cleared bit
// ---------------------------------------------------------------------------

fn lane_ring(seg: &ShmSegment, lanes: usize, capacity: usize) -> &LaneRing {
    let off = seg
        .alloc_zeroed(std::mem::size_of::<LaneRing>(), 0)
        .expect("segment has room for a lane-ring header");
    // SAFETY: freshly allocated, zeroed, in-bounds; LaneRing is zero-valid.
    let lr: &LaneRing = unsafe { seg.sref(off.cast()) };
    lr.init(seg, lanes, capacity).unwrap();
    lr
}

/// Producers with the given tags each push `per_producer` tagged values;
/// the single consumer drains **only** lanes whose dirty bit it takes
/// (exactly the scheduler's drain discipline). A task stranded behind a
/// cleared bit — the failure the mark-after-push / swap-before-drain
/// pairing exists to prevent — leaves the consumer spinning on an empty
/// mask and fails the schedule. Invariants: exactly-once delivery, FIFO
/// per producer (tags hashing to a shared lane race their slot claims but
/// never reorder an individual producer).
fn lane_round(tags: &[u64], per_producer: u64, lanes: usize, capacity: usize) {
    let s = seg();
    let lr = lane_ring(&s, lanes, capacity);
    let addr = lr as *const LaneRing as usize;
    let total = tags.len() as u64 * per_producer;

    let handles: Vec<_> = tags
        .iter()
        .enumerate()
        .map(|(p, &tag)| {
            let s = s.clone();
            thread::spawn(move || {
                // SAFETY: the lane ring lives in the segment mapping, which
                // the cloned handle keeps alive for the thread's lifetime.
                let lr = unsafe { &*(addr as *const LaneRing) };
                for i in 0..per_producer {
                    let value = 100 * (p as u64 + 1) + i;
                    while !lr.push(&s, tag, value) {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let mut popped = Vec::with_capacity(total as usize);
    while popped.len() < total as usize {
        let dirty = lr.take_dirty();
        if dirty == 0 {
            thread::yield_now();
            continue;
        }
        let mut bits = dirty;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            while let Some(v) = lr.lane(lane).pop(&s) {
                popped.push(v);
            }
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    for lane in 0..lanes {
        assert_eq!(lr.lane(lane).pop(&s), None, "lane {lane} not drained");
    }

    // Exactly once: the popped multiset equals the pushed set.
    let mut sorted = popped.clone();
    sorted.sort_unstable();
    let expected: Vec<u64> = (1..=tags.len() as u64)
        .flat_map(|p| (0..per_producer).map(move |i| 100 * p + i))
        .collect();
    assert_eq!(sorted, expected, "lost or duplicated values");

    // FIFO per producer: each producer's values appear in push order.
    for p in 1..=tags.len() as u64 {
        let seq: Vec<u64> = popped.iter().copied().filter(|v| v / 100 == p).collect();
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "producer {p} values reordered: {seq:?}"
        );
    }
}

/// Randomized sweep: three producers over two lanes — tags 0 and 2 share
/// lane 0 (hashed lane sharing, racing slot claims) while tag 1 owns
/// lane 1, with two-slot lanes forcing full-lane retries throughout.
#[test]
fn lane_ring_exactly_once_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 3500 });
    let r = explore(cfg, || lane_round(&[0, 1, 2], 2, 2, 2)).assert_ok();
    summarize("lane_ring_exactly_once_random", &r);
    assert_mostly_distinct(&r);
}

/// Bounded DFS of the shared-lane race alone: two producers hashed to one
/// lane of a two-lane ring, dirty-bit handoff against a concurrent drain.
#[test]
fn lane_ring_shared_lane_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 2500,
    });
    let r = explore(cfg, || lane_round(&[0, 2], 2, 2, 2)).assert_ok();
    summarize("lane_ring_shared_lane_dfs", &r);
}

// ---------------------------------------------------------------------------
// Stranded-slot repair: recovery from a producer dying mid-push
// ---------------------------------------------------------------------------
// Model fixtures for the `ring.push.reserved`, `ring.push_n.reserved`,
// `ring.push_n.publish` and `ring.lane.unmarked` crash points: the dead
// producer is emulated by `strand_one` (position claimed, never published)
// and by a direct lane push with no dirty-mark, so the checker can race
// live producers and the consumer against the corpse's leftovers.

/// One producer pushes a value, strands a claim (dies at
/// `ring.push.reserved`) and exits; a second producer keeps pushing around
/// the corpse; the consumer drains what it can, then — with both
/// producers joined, per the repair contract — runs `repair_stranded`.
/// Invariants: exactly one stranded reservation retired, every published
/// value arrives exactly once via pop-or-recovery, and the ring is
/// empty and reusable afterwards.
///
/// `capacity` must cover every claim (`live_values + 2`): once a claim is
/// stranded, slots past it never free, so an undersized ring would wedge
/// the live producer's retry loop — the exact wedge the *runtime* escapes
/// via its locked overflow queue, which this ring-only scenario lacks.
fn ring_repair_round(live_values: u64, capacity: usize) {
    assert!(capacity as u64 >= live_values + 2);
    let s = seg();
    let r = ring(&s, capacity);
    let addr = r as *const SubmitRing as usize;

    let corpse = {
        let s = s.clone();
        thread::spawn(move || {
            // SAFETY: the ring lives in the segment mapping, which the
            // cloned handle keeps alive for the thread's lifetime.
            let r = unsafe { &*(addr as *const SubmitRing) };
            while !r.push(&s, 1) {
                thread::yield_now();
            }
            while !r.strand_one(&s) {
                thread::yield_now();
            }
            // Dead: the claim above is never published.
        })
    };
    let live = {
        let s = s.clone();
        thread::spawn(move || {
            // SAFETY: as above.
            let r = unsafe { &*(addr as *const SubmitRing) };
            for v in 0..live_values {
                while !r.push(&s, 100 + v) {
                    thread::yield_now();
                }
            }
        })
    };

    // Drain opportunistically while the producers run, so the consumer
    // races both the corpse's claim and the live pushes.
    let mut got = Vec::new();
    for _ in 0..4 {
        while let Some(v) = r.pop(&s) {
            got.push(v);
        }
        thread::yield_now();
    }
    corpse.join().unwrap();
    live.join().unwrap();
    while let Some(v) = r.pop(&s) {
        got.push(v);
    }

    // All producers are dead: the repair contract holds.
    let mut recovered = Vec::new();
    let stranded = r.repair_stranded(&s, &mut recovered);
    assert_eq!(stranded, 1, "exactly the corpse's claim is retired");
    got.extend(recovered);
    got.sort_unstable();
    let mut expected = vec![1u64];
    expected.extend((0..live_values).map(|v| 100 + v));
    assert_eq!(got, expected, "pop + recovery must see each value once");
    assert!(r.is_empty());
    assert!(r.push(&s, 9), "ring must be reusable after repair");
    assert_eq!(r.pop(&s), Some(9));
}

/// The `ring.lane.unmarked` window on top of a stranded claim: lane 0
/// holds a value published without its dirty-mark (producer died between
/// push and `fetch_or`) plus a stranded claim; lane 1 has a live producer.
/// The consumer's mask-guided drain can never see the unmarked value; the
/// post-mortem lane sweep must recover it regardless of the bitmap.
fn lane_repair_round() {
    let s = seg();
    let lr = lane_ring(&s, 2, 2);
    let addr = lr as *const LaneRing as usize;

    let corpse = {
        let s = s.clone();
        thread::spawn(move || {
            // SAFETY: the lane ring lives in the segment mapping, which
            // the cloned handle keeps alive for the thread's lifetime.
            let lr = unsafe { &*(addr as *const LaneRing) };
            // Published but never marked: invisible to take_dirty().
            while !lr.lane(0).push(&s, 21) {
                thread::yield_now();
            }
            while !lr.lane(0).strand_one(&s) {
                thread::yield_now();
            }
        })
    };
    let live = {
        let s = s.clone();
        thread::spawn(move || {
            // SAFETY: as above.
            let lr = unsafe { &*(addr as *const LaneRing) };
            while !lr.push(&s, 1, 31) {
                thread::yield_now();
            }
        })
    };

    // Mask-guided drain, exactly the scheduler's discipline: only lanes
    // whose dirty bit we take. Value 21 must stay invisible here.
    let mut got = Vec::new();
    for _ in 0..4 {
        let mut dirty = lr.take_dirty();
        while dirty != 0 {
            let lane = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            while let Some(v) = lr.lane(lane).pop(&s) {
                got.push(v);
            }
        }
        thread::yield_now();
    }
    corpse.join().unwrap();
    live.join().unwrap();
    assert!(
        !got.contains(&21),
        "unmarked value leaked into a masked drain"
    );

    let mut recovered = Vec::new();
    let stranded = lr.repair_stranded(&s, &mut recovered);
    assert_eq!(stranded, 1);
    got.extend(recovered);
    got.sort_unstable();
    assert_eq!(got, vec![21, 31], "sweep must find the unmarked value");
    assert!(lr.is_empty());
    assert_eq!(lr.take_dirty(), 0, "repair clears the bitmap");
    assert!(lr.push(&s, 0, 40), "lanes must be reusable after repair");
    assert_eq!(lr.lane(0).pop(&s), Some(40));
}

/// Randomized sweep: two live values race the corpse's claim for slots —
/// pops, pushes and the strand interleave freely.
#[test]
fn ring_repair_stranded_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 3000 });
    let r = explore(cfg, || ring_repair_round(2, 4)).assert_ok();
    summarize("ring_repair_stranded_random", &r);
    assert_mostly_distinct(&r);
}

/// Bounded DFS of the minimal corpse-vs-consumer race (one live value).
#[test]
fn ring_repair_stranded_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 4000,
    });
    let r = explore(cfg, || ring_repair_round(1, 4)).assert_ok();
    summarize("ring_repair_stranded_dfs", &r);
}

/// Randomized sweep of the unmarked-lane recovery.
#[test]
fn lane_repair_unmarked_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 3000 });
    let r = explore(cfg, lane_repair_round).assert_ok();
    summarize("lane_repair_unmarked_random", &r);
    assert_mostly_distinct(&r);
}

// ---------------------------------------------------------------------------
// Batch split: the ready counter never loses the wake
// ---------------------------------------------------------------------------

/// Models `Scheduler::submit_batch`'s counter discipline around a split
/// batch. Each producer: one ready-counter add for its whole batch
/// (SeqCst, *before* anything is drainable), one reserve-N lane push, and
/// the rejected suffix appended to the locked overflow queue — with **no
/// counter rollback** on the split, exactly as the scheduler does (the
/// overflow lands in the same shard). The server loops on the counter
/// (the wake condition), draining dirty lanes and the overflow queue.
///
/// Invariants: the server finds every task of every batch exactly once
/// (a wake advertised by the counter is never lost to the split), and
/// the counter returns to zero (no phantom ready state left behind to
/// spin a future server).
fn batch_split_round(batches: &[&[u64]], capacity: usize) {
    let s = seg();
    let lr = lane_ring(&s, 1, capacity);
    let addr = lr as *const LaneRing as usize;
    let ready = Arc::new(AtomicU64::new(0));
    let locked: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let total: usize = batches.iter().map(|b| b.len()).sum();

    let handles: Vec<_> = batches
        .iter()
        .map(|&batch| {
            let s = s.clone();
            let ready = Arc::clone(&ready);
            let locked = Arc::clone(&locked);
            let batch = batch.to_vec();
            thread::spawn(move || {
                // SAFETY: the lane ring lives in the segment mapping, which
                // the cloned handle keeps alive for the thread's lifetime.
                let lr = unsafe { &*(addr as *const LaneRing) };
                // One add for the whole batch, before it becomes drainable.
                ready.fetch_add(batch.len() as u64, Ordering::SeqCst);
                let pushed = lr.push_n(&s, 0, &batch);
                if pushed < batch.len() {
                    // The split: no rollback — the suffix goes under the
                    // lock into the same shard's queues.
                    locked.lock().extend_from_slice(&batch[pushed..]);
                }
            })
        })
        .collect();

    let mut got = Vec::with_capacity(total);
    while got.len() < total {
        // The wake condition a server checks before serving.
        if ready.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
            continue;
        }
        let mut found = 0u64;
        if lr.take_dirty() != 0 {
            while let Some(v) = lr.lane(0).pop(&s) {
                got.push(v);
                found += 1;
            }
        }
        let overflow = std::mem::take(&mut *locked.lock());
        found += overflow.len() as u64;
        got.extend(overflow);
        if found == 0 {
            // Counter ahead of a not-yet-visible push: benign transient,
            // the server retries (this is the documented pre-add window).
            thread::yield_now();
        } else {
            ready.fetch_sub(found, Ordering::SeqCst);
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        ready.load(Ordering::SeqCst),
        0,
        "counter out of balance after the drain"
    );
    assert_eq!(lr.lane(0).pop(&s), None, "task stranded in the lane");
    assert!(locked.lock().is_empty(), "task stranded in the overflow");
    let mut sorted = got;
    sorted.sort_unstable();
    let mut expected: Vec<u64> = batches.iter().flat_map(|b| b.iter().copied()).collect();
    expected.sort_unstable();
    assert_eq!(sorted, expected, "batch member lost or duplicated");
}

/// Randomized sweep: two contending batches through a two-slot lane —
/// every schedule splits at least one batch between ring and overflow.
#[test]
fn batch_split_wake_not_lost_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 3500 });
    let r = explore(cfg, || batch_split_round(&[&[1, 2, 3], &[4, 5, 6]], 2)).assert_ok();
    summarize("batch_split_wake_not_lost_random", &r);
    assert_mostly_distinct(&r);
}

/// Bounded DFS of the single-batch split (three members, two slots) racing
/// one server.
#[test]
fn batch_split_wake_not_lost_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 4000,
    });
    let r = explore(cfg, || batch_split_round(&[&[1, 2, 3]], 2)).assert_ok();
    summarize("batch_split_wake_not_lost_dfs", &r);
}

// ---------------------------------------------------------------------------
// ClaimTable: exactly one claimer wins an armed slot
// ---------------------------------------------------------------------------

/// Two CPUs arm their handoff slots; per CPU, two claimers race a CAS
/// deposit while the owner (main) disarms concurrently. Invariant: per
/// armed slot, claim wins and the disarm observation agree — either one
/// claimer won and the disarm returns exactly its deposit, or the disarm
/// emptied the slot first and every claim failed.
fn claim_round(rounds: usize) {
    let table: Arc<ClaimTable> = Arc::from(
        // SAFETY: ClaimTable is repr(C), all-atomic, zero-valid.
        unsafe { Box::<ClaimTable>::new(std::mem::zeroed()) },
    );
    for _ in 0..rounds {
        for cpu in 0..2 {
            table.arm(cpu);
        }
        let claimers: Vec<_> = (0..2usize)
            .flat_map(|cpu| {
                (0..2u64).map({
                    let table = &table;
                    move |c| {
                        let table = Arc::clone(table);
                        let task = 8 * (c + 1);
                        thread::spawn(move || table.try_claim(cpu, task).then_some(task))
                    }
                })
            })
            .collect();
        let deposits: Vec<Option<u64>> = (0..2).map(|cpu| table.disarm(cpu)).collect();
        // 2 claimers per cpu, in spawn order (cpu 0 first).
        let wins: Vec<Option<u64>> = claimers.into_iter().map(|h| h.join().unwrap()).collect();

        for cpu in 0..2 {
            let cpu_wins: Vec<u64> = wins[cpu * 2..cpu * 2 + 2]
                .iter()
                .flatten()
                .copied()
                .collect();
            assert!(
                cpu_wins.len() <= 1,
                "cpu {cpu}: both claimers won the same arming"
            );
            match deposits[cpu] {
                // Disarm raced in before any claim; late claims must fail.
                None => {
                    assert!(
                        cpu_wins.is_empty(),
                        "cpu {cpu}: claim won but the deposit vanished"
                    );
                    assert!(!table.try_claim(cpu, 800), "disarmed slot claimable");
                }
                Some(v) => assert_eq!(
                    cpu_wins,
                    vec![v],
                    "cpu {cpu}: disarm saw a deposit nobody made"
                ),
            }
        }
        assert!(!table.any_armed(2), "hint bits leaked past the round");
    }
}

/// Randomized sweep: two rounds of the two-CPU, four-claimer race.
#[test]
fn claim_single_winner_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 3000 });
    let r = explore(cfg, || claim_round(2)).assert_ok();
    summarize("claim_single_winner_random", &r);
}

/// Bounded DFS of one round (claimers are straight-line CAS attempts, so
/// the space is small enough to enumerate meaningfully).
#[test]
fn claim_single_winner_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 4000,
    });
    let r = explore(cfg, || claim_round(1)).assert_ok();
    summarize("claim_single_winner_dfs", &r);
}

// ---------------------------------------------------------------------------
// Registry: join handshake vs. crash-reclaim
// ---------------------------------------------------------------------------

/// A guest attaches (Requested) and records some progress. The host's
/// reactor acks `Requested → Active` while a sweeper that believes the
/// guest crashed races `Requested → Dead` + detach. Invariants: exactly
/// one transition wins; after a reclaim the slot is genuinely free —
/// stale operations keyed to the dead process are inert no-ops and a new
/// occupant's record starts clean (no slot resurrection).
fn registry_round() {
    let s = seg();
    let g = s.attach_guest().unwrap();
    s.add_submitted(g, 2);
    s.add_completed(g, 1);

    let host = {
        let s = s.clone();
        thread::spawn(move || s.set_join_state(g, JoinState::Requested, JoinState::Active))
    };
    let sweeper = {
        let s = s.clone();
        thread::spawn(move || {
            if s.set_join_state(g, JoinState::Requested, JoinState::Dead) {
                s.detach(g);
                true
            } else {
                false
            }
        })
    };
    let acked = host.join().unwrap();
    let swept = sweeper.join().unwrap();
    assert!(
        acked ^ swept,
        "ack and crash-reclaim must win exactly once between them \
         (acked={acked}, swept={swept})"
    );

    if swept {
        // The slot is free; operations keyed to the dead guest are no-ops.
        assert_eq!(s.join_state(g), None);
        s.bump_heartbeat(g);
        s.add_submitted(g, 7);
        assert!(!s.set_join_state(g, JoinState::Dead, JoinState::Active));
        // A new occupant (possibly reusing the same slot index) starts
        // clean, and stale dead-guest mutators still cannot touch it.
        let h = s.attach().unwrap();
        s.add_completed(g, 9);
        let view = s.slot_view(h.slot).unwrap();
        assert_eq!(view.join_state, JoinState::None);
        assert_eq!(view.heartbeat, 1);
        assert_eq!((view.submitted, view.completed), (0, 0));
        s.detach(h);
    } else {
        assert_eq!(s.join_state(g), Some(JoinState::Active));
        let view = s.slot_view(g.slot).unwrap();
        assert_eq!((view.submitted, view.completed), (2, 1));
        s.detach(g);
    }
    assert_eq!(s.attached_count(), 0, "slot leaked past the schedule");
}

/// Randomized sweep of the handshake/reclaim race.
#[test]
fn registry_join_vs_reclaim_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 1500 });
    let r = explore(cfg, registry_round).assert_ok();
    summarize("registry_join_vs_reclaim_random", &r);
}

/// Bounded DFS of the same race (both racers are short CAS sequences).
#[test]
fn registry_join_vs_reclaim_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 4000,
    });
    let r = explore(cfg, registry_round).assert_ok();
    summarize("registry_join_vs_reclaim_dfs", &r);
}
