//! Model-checked protocol suites for `nosv-shmem` (run via `nosv-check`).
//!
//! The segment-resident protocols — the MPSC submit ring, the idle-CPU
//! claim table and the process-registry join state machine — are compiled
//! against `nosv_sync::hint`, so under the `model` feature every atomic
//! operation is a preemption point and the checker can enumerate or sample
//! interleavings. Each schedule builds a fresh heap-backed segment,
//! runs one bounded scenario and asserts its invariant:
//!
//! * **SubmitRing** — every pushed value is popped exactly once, in FIFO
//!   order per producer;
//! * **ClaimTable** — an armed slot is won by exactly one claimer, and the
//!   owner's disarm observes exactly the winning deposit;
//! * **registry** — the join handshake's `Requested → Active` ack and the
//!   sweeper's `Requested → Dead` crash-reclaim are mutually exclusive,
//!   and a reclaimed slot cannot be resurrected or corrupted by stale
//!   operations keyed to the dead process.
//!
//! Run with:
//!
//! ```text
//! cargo test -p nosv-shmem --features model --test model
//! ```
//!
//! On failure the checker prints a `NOSV_CHECK_SEED`/`NOSV_CHECK_SCHEDULE`
//! pair; exporting both replays exactly the failing schedule.

#![cfg(feature = "model")]

use std::sync::Arc;

use nosv_check::{explore, Config, Report, Strategy};
use nosv_shmem::{ClaimTable, JoinState, SegmentConfig, ShmSegment, SubmitRing};
use nosv_sync::hint::thread;

/// Prints a one-line exploration summary (visible with `--nocapture`).
fn summarize(name: &str, r: &Report) {
    eprintln!(
        "{name}: {} schedules ({} distinct{}), {} failures",
        r.schedules,
        r.distinct_schedules,
        if r.complete { ", complete" } else { "" },
        r.failures.len(),
    );
}

/// Asserts the sampled schedules were overwhelmingly distinct.
fn assert_mostly_distinct(r: &Report) {
    assert!(
        r.distinct_schedules * 10 >= r.schedules * 9,
        "only {} of {} schedules distinct: scenario too small for sampling",
        r.distinct_schedules,
        r.schedules
    );
}

fn seg() -> ShmSegment {
    // Smallest geometry that still fits a couple of chunks: one fresh
    // segment is zeroed per schedule, so size directly scales suite time.
    ShmSegment::create(SegmentConfig {
        size: 256 * 1024,
        max_cpus: 2,
    })
}

fn ring(seg: &ShmSegment, capacity: usize) -> &SubmitRing {
    let off = seg
        .alloc_zeroed(std::mem::size_of::<SubmitRing>(), 0)
        .expect("segment has room for a ring header");
    // SAFETY: freshly allocated, zeroed, in-bounds; SubmitRing is zero-valid.
    let r: &SubmitRing = unsafe { seg.sref(off.cast()) };
    r.init(seg, capacity).unwrap();
    r
}

// ---------------------------------------------------------------------------
// SubmitRing: exactly-once, FIFO per producer
// ---------------------------------------------------------------------------

/// `producers` threads each push `per_producer` tagged values (retrying
/// while the ring is full); the main virtual thread is the single
/// consumer. Invariants: every value arrives exactly once and each
/// producer's values arrive in push order.
fn ring_round(producers: usize, per_producer: u64, capacity: usize) {
    let s = seg();
    let r = ring(&s, capacity);
    let addr = r as *const SubmitRing as usize;
    let total = producers as u64 * per_producer;

    let handles: Vec<_> = (0..producers as u64)
        .map(|p| {
            let s = s.clone();
            thread::spawn(move || {
                // SAFETY: the ring lives in the segment mapping, which the
                // cloned handle keeps alive for the thread's lifetime.
                let r = unsafe { &*(addr as *const SubmitRing) };
                for i in 0..per_producer {
                    let value = 100 * (p + 1) + i;
                    while !r.push(&s, value) {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let mut popped = Vec::with_capacity(total as usize);
    while popped.len() < total as usize {
        match r.pop(&s) {
            Some(v) => popped.push(v),
            None => thread::yield_now(),
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(r.pop(&s), None, "ring must be empty after draining");

    // Exactly once: the popped multiset equals the pushed set.
    let mut sorted = popped.clone();
    sorted.sort_unstable();
    let expected: Vec<u64> = (1..=producers as u64)
        .flat_map(|p| (0..per_producer).map(move |i| 100 * p + i))
        .collect();
    assert_eq!(sorted, expected, "lost or duplicated values");

    // FIFO per producer: each producer's values appear in push order.
    for p in 1..=producers as u64 {
        let seq: Vec<u64> = popped.iter().copied().filter(|v| v / 100 == p).collect();
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "producer {p} values reordered: {seq:?}"
        );
    }
}

/// Randomized sweep: two producers contending for a two-slot ring, so
/// wraparound and the full-ring fail-retry path are both exercised.
#[test]
fn ring_exactly_once_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 4000 });
    let r = explore(cfg, || ring_round(2, 2, 2)).assert_ok();
    summarize("ring_exactly_once_random", &r);
    assert_mostly_distinct(&r);
}

/// Bounded DFS of the single-producer case (two values through a two-slot
/// ring against a concurrent consumer).
#[test]
fn ring_spsc_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 2500,
    });
    let r = explore(cfg, || ring_round(1, 2, 2)).assert_ok();
    summarize("ring_spsc_dfs", &r);
}

// ---------------------------------------------------------------------------
// ClaimTable: exactly one claimer wins an armed slot
// ---------------------------------------------------------------------------

/// Two CPUs arm their handoff slots; per CPU, two claimers race a CAS
/// deposit while the owner (main) disarms concurrently. Invariant: per
/// armed slot, claim wins and the disarm observation agree — either one
/// claimer won and the disarm returns exactly its deposit, or the disarm
/// emptied the slot first and every claim failed.
fn claim_round(rounds: usize) {
    let table: Arc<ClaimTable> = Arc::from(
        // SAFETY: ClaimTable is repr(C), all-atomic, zero-valid.
        unsafe { Box::<ClaimTable>::new(std::mem::zeroed()) },
    );
    for _ in 0..rounds {
        for cpu in 0..2 {
            table.arm(cpu);
        }
        let claimers: Vec<_> = (0..2usize)
            .flat_map(|cpu| {
                (0..2u64).map({
                    let table = &table;
                    move |c| {
                        let table = Arc::clone(table);
                        let task = 8 * (c + 1);
                        thread::spawn(move || table.try_claim(cpu, task).then_some(task))
                    }
                })
            })
            .collect();
        let deposits: Vec<Option<u64>> = (0..2).map(|cpu| table.disarm(cpu)).collect();
        // 2 claimers per cpu, in spawn order (cpu 0 first).
        let wins: Vec<Option<u64>> = claimers.into_iter().map(|h| h.join().unwrap()).collect();

        for cpu in 0..2 {
            let cpu_wins: Vec<u64> = wins[cpu * 2..cpu * 2 + 2]
                .iter()
                .flatten()
                .copied()
                .collect();
            assert!(
                cpu_wins.len() <= 1,
                "cpu {cpu}: both claimers won the same arming"
            );
            match deposits[cpu] {
                // Disarm raced in before any claim; late claims must fail.
                None => {
                    assert!(
                        cpu_wins.is_empty(),
                        "cpu {cpu}: claim won but the deposit vanished"
                    );
                    assert!(!table.try_claim(cpu, 800), "disarmed slot claimable");
                }
                Some(v) => assert_eq!(
                    cpu_wins,
                    vec![v],
                    "cpu {cpu}: disarm saw a deposit nobody made"
                ),
            }
        }
        assert!(!table.any_armed(2), "hint bits leaked past the round");
    }
}

/// Randomized sweep: two rounds of the two-CPU, four-claimer race.
#[test]
fn claim_single_winner_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 3000 });
    let r = explore(cfg, || claim_round(2)).assert_ok();
    summarize("claim_single_winner_random", &r);
}

/// Bounded DFS of one round (claimers are straight-line CAS attempts, so
/// the space is small enough to enumerate meaningfully).
#[test]
fn claim_single_winner_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 4000,
    });
    let r = explore(cfg, || claim_round(1)).assert_ok();
    summarize("claim_single_winner_dfs", &r);
}

// ---------------------------------------------------------------------------
// Registry: join handshake vs. crash-reclaim
// ---------------------------------------------------------------------------

/// A guest attaches (Requested) and records some progress. The host's
/// reactor acks `Requested → Active` while a sweeper that believes the
/// guest crashed races `Requested → Dead` + detach. Invariants: exactly
/// one transition wins; after a reclaim the slot is genuinely free —
/// stale operations keyed to the dead process are inert no-ops and a new
/// occupant's record starts clean (no slot resurrection).
fn registry_round() {
    let s = seg();
    let g = s.attach_guest().unwrap();
    s.add_submitted(g, 2);
    s.add_completed(g, 1);

    let host = {
        let s = s.clone();
        thread::spawn(move || s.set_join_state(g, JoinState::Requested, JoinState::Active))
    };
    let sweeper = {
        let s = s.clone();
        thread::spawn(move || {
            if s.set_join_state(g, JoinState::Requested, JoinState::Dead) {
                s.detach(g);
                true
            } else {
                false
            }
        })
    };
    let acked = host.join().unwrap();
    let swept = sweeper.join().unwrap();
    assert!(
        acked ^ swept,
        "ack and crash-reclaim must win exactly once between them \
         (acked={acked}, swept={swept})"
    );

    if swept {
        // The slot is free; operations keyed to the dead guest are no-ops.
        assert_eq!(s.join_state(g), None);
        s.bump_heartbeat(g);
        s.add_submitted(g, 7);
        assert!(!s.set_join_state(g, JoinState::Dead, JoinState::Active));
        // A new occupant (possibly reusing the same slot index) starts
        // clean, and stale dead-guest mutators still cannot touch it.
        let h = s.attach().unwrap();
        s.add_completed(g, 9);
        let view = s.slot_view(h.slot).unwrap();
        assert_eq!(view.join_state, JoinState::None);
        assert_eq!(view.heartbeat, 1);
        assert_eq!((view.submitted, view.completed), (0, 0));
        s.detach(h);
    } else {
        assert_eq!(s.join_state(g), Some(JoinState::Active));
        let view = s.slot_view(g.slot).unwrap();
        assert_eq!((view.submitted, view.completed), (2, 1));
        s.detach(g);
    }
    assert_eq!(s.attached_count(), 0, "slot leaked past the schedule");
}

/// Randomized sweep of the handshake/reclaim race.
#[test]
fn registry_join_vs_reclaim_random() {
    let cfg = Config::from_env(Strategy::Random { schedules: 1500 });
    let r = explore(cfg, registry_round).assert_ok();
    summarize("registry_join_vs_reclaim_random", &r);
}

/// Bounded DFS of the same race (both racers are short CAS sequences).
#[test]
fn registry_join_vs_reclaim_dfs() {
    let cfg = Config::from_env(Strategy::Dfs {
        max_schedules: 4000,
    });
    let r = explore(cfg, registry_round).assert_ok();
    summarize("registry_join_vs_reclaim_dfs", &r);
}
