//! Property-based tests for the shared-memory SLAB allocator.
//!
//! Invariants checked against arbitrary allocation/free interleavings:
//! 1. live allocations never overlap;
//! 2. data written into an allocation survives unrelated alloc/free traffic
//!    (nobody else scribbles on it);
//! 3. the allocator balances (allocated_bytes returns to zero, every chunk
//!    is reclaimed after draining caches);
//! 4. allocation either succeeds or fails cleanly — never corrupts state.

use nosv_shmem::{SegmentConfig, ShmSegment, Shoff, CHUNK_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `size` bytes on behalf of `cpu`.
    Alloc { size: usize, cpu: usize },
    /// Free the `idx % live`-th live allocation from `cpu`.
    Free { idx: usize, cpu: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..40_000, 0usize..4).prop_map(|(size, cpu)| Op::Alloc { size, cpu }),
        2 => (any::<usize>(), 0usize..4).prop_map(|(idx, cpu)| Op::Free { idx, cpu }),
    ]
}

/// A live allocation: offset, requested size, and the byte pattern written.
struct Live {
    off: Shoff<u8>,
    size: usize,
    pattern: u8,
}

fn fill(seg: &ShmSegment, l: &Live) {
    // SAFETY: the allocation is live and exclusively ours.
    unsafe { std::ptr::write_bytes(seg.resolve(l.off), l.pattern, l.size) };
}

fn check(seg: &ShmSegment, l: &Live) {
    // SAFETY: as above.
    let bytes = unsafe { std::slice::from_raw_parts(seg.resolve(l.off), l.size) };
    assert!(
        bytes.iter().all(|&b| b == l.pattern),
        "allocation at {:#x} (size {}) was corrupted",
        l.off.raw(),
        l.size
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_traffic_preserves_contents_and_balances(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let seg = ShmSegment::create(SegmentConfig {
            size: 8 * 1024 * 1024,
            max_cpus: 4,
        });
        let initial_free = seg.alloc_stats().free_chunks;
        let mut live: Vec<Live> = Vec::new();
        let mut pattern = 1u8;

        for op in ops {
            match op {
                Op::Alloc { size, cpu } => {
                    match seg.alloc(size, cpu) {
                        Ok(off) => {
                            let l = Live { off, size, pattern };
                            fill(&seg, &l);
                            pattern = pattern.wrapping_add(1).max(1);
                            // Overlap check against every live allocation,
                            // using the conservative requested size.
                            for other in &live {
                                let a0 = l.off.raw();
                                let a1 = a0 + l.size as u64;
                                let b0 = other.off.raw();
                                let b1 = b0 + other.size as u64;
                                prop_assert!(a1 <= b0 || b1 <= a0,
                                    "overlap {a0:#x}..{a1:#x} vs {b0:#x}..{b1:#x}");
                            }
                            live.push(l);
                        }
                        Err(_) => { /* clean failure is acceptable */ }
                    }
                }
                Op::Free { idx, cpu } => {
                    if !live.is_empty() {
                        let l = live.swap_remove(idx % live.len());
                        check(&seg, &l);
                        seg.free(l.off, cpu);
                    }
                }
            }
            // All survivors still hold their pattern after every operation.
            for l in &live {
                check(&seg, l);
            }
        }

        // Tear down: free everything, drain caches, verify full reclamation.
        for l in live.drain(..) {
            check(&seg, &l);
            seg.free(l.off, 0);
        }
        for cpu in 0..4 {
            seg.drain_cpu_caches(cpu);
        }
        let stats = seg.alloc_stats();
        prop_assert_eq!(stats.allocated_bytes, 0);
        prop_assert_eq!(stats.total_allocs, stats.total_frees);
        prop_assert_eq!(stats.free_chunks, initial_free);
    }

    #[test]
    fn large_runs_never_overlap_slab_chunks(
        sizes in proptest::collection::vec(1usize..(4 * CHUNK_SIZE), 1..20)
    ) {
        let seg = ShmSegment::create(SegmentConfig {
            size: 16 * 1024 * 1024,
            max_cpus: 2,
        });
        let mut live: Vec<(Shoff<u8>, usize)> = Vec::new();
        for size in sizes {
            if let Ok(off) = seg.alloc(size, 0) {
                for &(o, s) in &live {
                    let a0 = off.raw();
                    let a1 = a0 + size as u64;
                    let b0 = o.raw();
                    let b1 = b0 + s as u64;
                    prop_assert!(a1 <= b0 || b1 <= a0);
                }
                live.push((off, size));
            }
        }
        for (off, _) in live {
            seg.free(off, 0);
        }
        seg.drain_cpu_caches(0);
        prop_assert_eq!(seg.alloc_stats().allocated_bytes, 0);
    }
}
