//! Randomized property tests for the shared-memory SLAB allocator.
//!
//! Invariants checked against arbitrary allocation/free interleavings:
//! 1. live allocations never overlap;
//! 2. data written into an allocation survives unrelated alloc/free traffic
//!    (nobody else scribbles on it);
//! 3. the allocator balances (allocated_bytes returns to zero, every chunk
//!    is reclaimed after draining caches);
//! 4. allocation either succeeds or fails cleanly — never corrupts state.
//!
//! Operation sequences come from a seeded deterministic generator, so
//! failures reproduce; set `NOSV_PROP_SEED` to explore another corner.

use nosv_shmem::{SegmentConfig, ShmSegment, Shoff, CHUNK_SIZE};
use nosv_sync::SplitMix64;

/// Deterministic operation-sequence generator over the workspace's shared
/// PRNG.
struct Gen(SplitMix64);

impl Gen {
    fn new() -> Gen {
        let seed = std::env::var("NOSV_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xa110_c8ed);
        Gen(SplitMix64::new(seed))
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.0.range_u64(lo as u64, hi as u64) as usize
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `size` bytes on behalf of `cpu`.
    Alloc { size: usize, cpu: usize },
    /// Free the `idx % live`-th live allocation from `cpu`.
    Free { idx: usize, cpu: usize },
}

impl Op {
    /// 3:2 alloc/free mix, matching the original proptest strategy.
    fn gen(g: &mut Gen) -> Op {
        if g.range(0, 5) < 3 {
            Op::Alloc {
                size: g.range(1, 40_000),
                cpu: g.range(0, 4),
            }
        } else {
            Op::Free {
                idx: g.range(0, usize::MAX),
                cpu: g.range(0, 4),
            }
        }
    }
}

/// A live allocation: offset, requested size, and the byte pattern written.
struct Live {
    off: Shoff<u8>,
    size: usize,
    pattern: u8,
}

fn fill(seg: &ShmSegment, l: &Live) {
    // SAFETY: the allocation is live and exclusively ours.
    unsafe { std::ptr::write_bytes(seg.resolve(l.off), l.pattern, l.size) };
}

fn check(seg: &ShmSegment, l: &Live) {
    // SAFETY: as above.
    let bytes = unsafe { std::slice::from_raw_parts(seg.resolve(l.off), l.size) };
    assert!(
        bytes.iter().all(|&b| b == l.pattern),
        "allocation at {:#x} (size {}) was corrupted",
        l.off.raw(),
        l.size
    );
}

fn no_overlap(a0: u64, a1: u64, b0: u64, b1: u64) -> bool {
    a1 <= b0 || b1 <= a0
}

#[test]
fn random_traffic_preserves_contents_and_balances() {
    let mut g = Gen::new();
    for _case in 0..64 {
        let seg = ShmSegment::create(SegmentConfig {
            size: 8 * 1024 * 1024,
            max_cpus: 4,
        });
        let initial_free = seg.alloc_stats().free_chunks;
        let mut live: Vec<Live> = Vec::new();
        let mut pattern = 1u8;

        let ops = g.range(1, 200);
        for _ in 0..ops {
            match Op::gen(&mut g) {
                Op::Alloc { size, cpu } => {
                    match seg.alloc(size, cpu) {
                        Ok(off) => {
                            let l = Live { off, size, pattern };
                            fill(&seg, &l);
                            pattern = pattern.wrapping_add(1).max(1);
                            // Overlap check against every live allocation,
                            // using the conservative requested size.
                            for other in &live {
                                assert!(
                                    no_overlap(
                                        l.off.raw(),
                                        l.off.raw() + l.size as u64,
                                        other.off.raw(),
                                        other.off.raw() + other.size as u64
                                    ),
                                    "overlapping allocations"
                                );
                            }
                            live.push(l);
                        }
                        Err(_) => { /* clean failure is acceptable */ }
                    }
                }
                Op::Free { idx, cpu } => {
                    if !live.is_empty() {
                        let l = live.swap_remove(idx % live.len());
                        check(&seg, &l);
                        seg.free(l.off, cpu);
                    }
                }
            }
            // All survivors still hold their pattern after every operation.
            for l in &live {
                check(&seg, l);
            }
        }

        // Tear down: free everything, drain caches, verify full reclamation.
        for l in live.drain(..) {
            check(&seg, &l);
            seg.free(l.off, 0);
        }
        for cpu in 0..4 {
            seg.drain_cpu_caches(cpu);
        }
        let stats = seg.alloc_stats();
        assert_eq!(stats.allocated_bytes, 0);
        assert_eq!(stats.total_allocs, stats.total_frees);
        assert_eq!(stats.free_chunks, initial_free);
    }
}

#[test]
fn large_runs_never_overlap_slab_chunks() {
    let mut g = Gen::new();
    for _case in 0..64 {
        let seg = ShmSegment::create(SegmentConfig {
            size: 16 * 1024 * 1024,
            max_cpus: 2,
        });
        let mut live: Vec<(Shoff<u8>, usize)> = Vec::new();
        let n = g.range(1, 20);
        for _ in 0..n {
            let size = g.range(1, 4 * CHUNK_SIZE);
            if let Ok(off) = seg.alloc(size, 0) {
                for &(o, s) in &live {
                    assert!(
                        no_overlap(
                            off.raw(),
                            off.raw() + size as u64,
                            o.raw(),
                            o.raw() + s as u64
                        ),
                        "overlapping large allocations"
                    );
                }
                live.push((off, size));
            }
        }
        for (off, _) in live {
            seg.free(off, 0);
        }
        seg.drain_cpu_caches(0);
        assert_eq!(seg.alloc_stats().allocated_bytes, 0);
    }
}
