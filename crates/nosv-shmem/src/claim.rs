//! Idle-CPU claim table: the shared-memory half of direct dispatch.
//!
//! The paper's submission path (§3.4) always queues: push → wake → lock →
//! drain → pick → serve. When a CPU is *already idle and waiting*, all of
//! that is overhead — the submitter knows a task, the CPU wants one, and
//! nothing else is in line. The claim table lets a submission hand its
//! task straight to an idle CPU with **one CAS**, bypassing the rings,
//! the queues and the delegation lock entirely:
//!
//! * each CPU owns one *handoff slot*, a single `u64` word:
//!   `0` = not armed, [`ClaimTable::ARMED`] = the CPU is idle and
//!   claimable, any other value = a deposited task (an offset payload,
//!   always `> ARMED` since segment offsets are nonzero and aligned);
//! * a per-word *armed bitmap* accelerates the submitter's scan — bits
//!   are hints (set on arm, cleared on claim/disarm); the slot CAS is the
//!   authority;
//! * an idle CPU **arms** its slot (`0 → ARMED`) before committing to
//!   sleep and **disarms** with a single swap on wake — the swap either
//!   returns the armed marker (nothing arrived) or a deposited task;
//! * a submitter **claims** with `CAS(ARMED → task)`: success transfers
//!   the task; failure (the CPU woke up, or another submitter won) costs
//!   one failed CAS and the submitter falls back to the ring path.
//!
//! Exactly-once delivery is the CAS's: a slot leaves `ARMED` exactly once
//! per arming, either by the owner's disarm or by one claimer. Blocking
//! and wakeup are host-side concerns (the runtime pairs each slot with a
//! per-CPU gate in `nosv_sync`); this table is pure shared state, usable
//! from any attached process.
//!
//! # Memory ordering
//!
//! Arming participates in a store-buffer (Dekker) protocol with the
//! submission path: the idle CPU arms (SeqCst) *then* re-checks the
//! scheduler's ready counters; a submitter publishes its task (SeqCst
//! ready-counter bump) *then* scans the armed bitmap. In any SeqCst total
//! order one side sees the other, so a task is never queued with its only
//! eligible CPU committed to an unnotified sleep.

use nosv_sync::hint::{AtomicU64, Ordering};

/// Most CPUs a claim table covers (matches the scheduler's array bound).
pub const CLAIM_MAX_CPUS: usize = 256;

const MASK_WORDS: usize = CLAIM_MAX_CPUS / 64;

/// The idle-CPU claim table; see the module docs. `repr(C)`, fixed
/// layout, zero-valid (zeroed = no CPU armed).
#[repr(C)]
pub struct ClaimTable {
    /// Armed-CPU hint bits, 64 CPUs per word.
    mask: [AtomicU64; MASK_WORDS],
    /// Per-CPU handoff slots.
    slots: [AtomicU64; CLAIM_MAX_CPUS],
}

impl ClaimTable {
    /// Slot marker for "armed, no task yet". Task payloads must be
    /// greater (segment offsets are nonzero and 8-aligned, so any real
    /// payload is ≥ 8).
    pub const ARMED: u64 = 1;

    /// Arms `cpu`'s slot: the CPU advertises itself claimable.
    ///
    /// Only the CPU's owning worker may call this, and only while its
    /// slot is empty (`0`).
    #[inline]
    pub fn arm(&self, cpu: usize) {
        debug_assert_eq!(
            self.slots[cpu].load(Ordering::Relaxed),
            0,
            "arming a non-empty slot"
        );
        self.slots[cpu].store(Self::ARMED, Ordering::SeqCst);
        self.mask[cpu / 64].fetch_or(1 << (cpu % 64), Ordering::SeqCst);
    }

    /// Disarms `cpu`'s slot, returning a task deposited since the arm.
    ///
    /// Only the CPU's owning worker may call this. Idempotent on an
    /// already-empty slot (returns `None`).
    #[inline]
    pub fn disarm(&self, cpu: usize) -> Option<u64> {
        let prev = self.slots[cpu].swap(0, Ordering::SeqCst);
        self.mask[cpu / 64].fetch_and(!(1 << (cpu % 64)), Ordering::SeqCst);
        if prev > Self::ARMED {
            Some(prev)
        } else {
            None
        }
    }

    /// Attempts to hand `task` to `cpu` (one CAS). `true` = the CPU now
    /// owns the task; the caller must still deliver the wakeup through
    /// its host-side gate.
    ///
    /// # Panics
    ///
    /// Debug-asserts `task > ARMED` (real payloads always are).
    #[inline]
    pub fn try_claim(&self, cpu: usize, task: u64) -> bool {
        debug_assert!(task > Self::ARMED, "payload collides with the armed marker");
        let won = self.slots[cpu]
            .compare_exchange(Self::ARMED, task, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if won {
            self.mask[cpu / 64].fetch_and(!(1 << (cpu % 64)), Ordering::SeqCst);
        }
        won
    }

    /// One word of the armed-CPU hint bitmap (CPUs `64*w .. 64*w+63`).
    #[inline]
    pub fn armed_word(&self, w: usize) -> u64 {
        self.mask[w].load(Ordering::SeqCst)
    }

    /// Whether any CPU in `[0, cpus)` is currently armed (hint).
    #[inline]
    pub fn any_armed(&self, cpus: usize) -> bool {
        for w in 0..cpus.div_ceil(64) {
            if self.armed_word(w) != 0 {
                return true;
            }
        }
        false
    }

    /// Number of CPUs in `[0, cpus)` currently armed (hint snapshot).
    #[inline]
    pub fn armed_count(&self, cpus: usize) -> usize {
        let mut count = 0;
        for w in 0..cpus.div_ceil(64) {
            let mut word = self.armed_word(w);
            if (w + 1) * 64 > cpus {
                let keep = cpus - w * 64;
                word &= u64::MAX.checked_shr(64 - keep as u32).unwrap_or(0);
            }
            count += word.count_ones() as usize;
        }
        count
    }

    /// Armed CPUs within `[lo, hi)`, lowest first (hint snapshot).
    pub fn armed_in(&self, lo: usize, hi: usize) -> impl Iterator<Item = usize> + '_ {
        let hi = hi.min(CLAIM_MAX_CPUS);
        let lo = lo.min(hi);
        (lo / 64..hi.div_ceil(64)).flat_map(move |w| {
            let mut word = self.armed_word(w);
            if w == lo / 64 {
                word &= u64::MAX.checked_shl((lo % 64) as u32).unwrap_or(0);
            }
            if (w + 1) * 64 > hi {
                let keep = hi - w * 64;
                word &= u64::MAX.checked_shr(64 - keep as u32).unwrap_or(0);
            }
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(w * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    fn table() -> Box<ClaimTable> {
        // SAFETY: ClaimTable is repr(C), all-atomic, zero-valid.
        unsafe { Box::new(std::mem::zeroed()) }
    }

    #[test]
    fn arm_claim_disarm_roundtrip() {
        let t = table();
        assert!(!t.any_armed(8));
        assert!(!t.try_claim(3, 800), "unarmed CPU cannot be claimed");
        t.arm(3);
        assert!(t.any_armed(8));
        assert_eq!(t.armed_in(0, 8).collect::<Vec<_>>(), vec![3]);
        assert!(t.try_claim(3, 800));
        assert!(!t.any_armed(8), "claim clears the hint bit");
        assert!(!t.try_claim(3, 900), "slot already holds a task");
        assert_eq!(t.disarm(3), Some(800));
        assert_eq!(t.disarm(3), None, "idempotent once emptied");
    }

    #[test]
    fn disarm_without_deposit_returns_none() {
        let t = table();
        t.arm(0);
        assert_eq!(t.disarm(0), None);
        assert!(!t.try_claim(0, 80), "disarmed CPU cannot be claimed");
    }

    #[test]
    fn armed_in_respects_range() {
        let t = table();
        for cpu in [1usize, 5, 64, 70] {
            t.arm(cpu);
        }
        assert_eq!(t.armed_in(0, 64).collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(t.armed_in(2, 6).collect::<Vec<_>>(), vec![5]);
        assert_eq!(t.armed_in(64, 128).collect::<Vec<_>>(), vec![64, 70]);
        assert_eq!(t.armed_in(0, 71).count(), 4);
    }

    /// Racing claimers: an armed slot is won by exactly one of N CAS
    /// attempts, and the owner's disarm sees exactly that deposit.
    #[test]
    fn exactly_one_claimer_wins() {
        const ROUNDS: usize = if cfg!(miri) { 50 } else { 2_000 };
        const CLAIMERS: usize = 4;
        let t: Arc<ClaimTable> = Arc::from(table());
        let wins = Arc::new(AtomicUsize::new(0));
        for round in 0..ROUNDS {
            t.arm(0);
            let handles: Vec<_> = (0..CLAIMERS)
                .map(|c| {
                    let t = Arc::clone(&t);
                    let wins = Arc::clone(&wins);
                    thread::spawn(move || {
                        if t.try_claim(0, 8 * (c as u64 + 1)) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let deposited = t.disarm(0);
            assert!(deposited.is_some(), "round {round}: no claimer won");
        }
        assert_eq!(wins.load(Ordering::Relaxed), ROUNDS);
    }
}
