//! The shared segment: creation, "mapping" handles, and raw access.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::layout::{SegmentGeometry, CHUNK_SIZE, HEADER_BYTES};
use crate::offset::Shoff;

const MAGIC: u64 = 0x6e4f_5356_5348_4d31; // "nOSVSHM1"

/// Configuration for creating a segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Total size of the segment in bytes. Defaults to 64 MiB.
    pub size: usize,
    /// Number of CPUs the per-CPU structures are sized for. Defaults to 64.
    pub max_cpus: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            size: 64 * 1024 * 1024,
            max_cpus: 64,
        }
    }
}

/// Fixed-layout header at offset 0 of every segment.
///
/// Everything an attaching process needs to rederive the geometry, plus the
/// `user_root` anchor through which the runtime built on top (nOS-V) finds
/// its own state. `repr(C)` and zero-validity mirror a freshly truncated
/// POSIX segment.
#[repr(C)]
pub(crate) struct Header {
    magic: AtomicU64,
    total_size: u64,
    max_cpus: u64,
    /// Offset of the runtime's root object; 0 until published.
    user_root: AtomicU64,
    /// Monotonic source of logical process ids.
    next_pid: AtomicU64,
}

struct SegmentInner {
    base: NonNull<u8>,
    layout: Layout,
    geometry: SegmentGeometry,
}

// SAFETY: the raw region is shared intentionally; all concurrent access to
// initialized metadata goes through atomics and in-segment locks, and the
// allocator hands out disjoint object ranges.
unsafe impl Send for SegmentInner {}
unsafe impl Sync for SegmentInner {}

impl Drop for SegmentInner {
    fn drop(&mut self) {
        // SAFETY: `base` was allocated with exactly this layout in `create`.
        unsafe { dealloc(self.base.as_ptr(), self.layout) };
    }
}

/// A handle to a shared segment — the in-process equivalent of one
/// process's `mmap` of the POSIX segment.
///
/// Cloning a `ShmSegment` models another process mapping the same segment:
/// all clones see the same memory, and the backing region is released when
/// the last handle drops (the paper's "last process to unregister deletes
/// the segment", §3.3). Named lookup via [`ShmSegment::open_or_create`]
/// mirrors the `shm_open` check-then-initialize startup protocol.
#[derive(Clone)]
pub struct ShmSegment {
    inner: Arc<SegmentInner>,
}

fn named_registry() -> &'static Mutex<HashMap<String, Weak<SegmentInner>>> {
    static NAMED: OnceLock<Mutex<HashMap<String, Weak<SegmentInner>>>> = OnceLock::new();
    NAMED.get_or_init(|| Mutex::new(HashMap::new()))
}

impl ShmSegment {
    /// Creates a new anonymous segment.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot hold the metadata plus one chunk
    /// (see [`SegmentGeometry::compute`]).
    pub fn create(config: SegmentConfig) -> ShmSegment {
        let geometry = SegmentGeometry::compute(config.size, config.max_cpus)
            .expect("segment too small for its metadata");
        // Align the whole segment to CHUNK_SIZE so objects inside chunks are
        // naturally aligned to their (power-of-two) size class.
        let layout = Layout::from_size_align(config.size, CHUNK_SIZE).expect("bad layout");
        // SAFETY: layout has nonzero size (geometry computation succeeded).
        let raw = unsafe { alloc_zeroed(layout) };
        let base = NonNull::new(raw).expect("segment allocation failed");
        let seg = ShmSegment {
            inner: Arc::new(SegmentInner {
                base,
                layout,
                geometry,
            }),
        };
        {
            let h = seg.header();
            // SAFETY-by-construction: region is zeroed; plain stores suffice
            // before the segment is shared.
            h.magic.store(MAGIC, Ordering::Relaxed);
            let hp = h as *const Header as *mut Header;
            // SAFETY: we are the only owner during creation.
            unsafe {
                (*hp).total_size = config.size as u64;
                (*hp).max_cpus = config.max_cpus as u64;
            }
            h.next_pid.store(1, Ordering::Relaxed);
        }
        crate::slab::init_slab(&seg);
        seg
    }

    /// Opens the segment registered under `name`, creating and registering
    /// it if absent — the paper's startup protocol (§3.3): "the library
    /// checks during startup for the existence of a specific POSIX shared
    /// memory segment and initializes the segment if it does not exist".
    ///
    /// Returns the handle and whether this call created the segment.
    pub fn open_or_create(name: &str, config: SegmentConfig) -> (ShmSegment, bool) {
        let mut reg = named_registry().lock().expect("named registry poisoned");
        if let Some(weak) = reg.get(name) {
            if let Some(inner) = weak.upgrade() {
                return (ShmSegment { inner }, false);
            }
        }
        let seg = ShmSegment::create(config);
        reg.insert(name.to_string(), Arc::downgrade(&seg.inner));
        (seg, true)
    }

    /// The segment's geometry (region offsets, chunk count).
    #[inline]
    pub fn geometry(&self) -> &SegmentGeometry {
        &self.inner.geometry
    }

    /// Total size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.inner.geometry.total_size
    }

    /// Number of "mappings" (handles) currently alive, this one included.
    pub fn mapping_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Resolves a typed offset to a raw pointer into this mapping.
    ///
    /// The returned pointer is only meaningful while the segment is alive;
    /// callers must uphold aliasing rules for the pointee (the allocator
    /// guarantees distinct allocations never overlap).
    #[inline]
    pub fn resolve<T>(&self, off: Shoff<T>) -> *mut T {
        debug_assert!(!off.is_null(), "resolving null Shoff");
        debug_assert!(
            off.raw() as usize + std::mem::size_of::<T>() <= self.size(),
            "Shoff {:#x} + {} escapes segment of {} bytes",
            off.raw(),
            std::mem::size_of::<T>(),
            self.size()
        );
        // SAFETY: bounds checked above (in debug); offset arithmetic stays
        // within the allocation.
        unsafe { self.inner.base.as_ptr().add(off.raw() as usize).cast::<T>() }
    }

    /// Resolves an offset to a shared reference.
    ///
    /// # Safety
    ///
    /// The offset must point to an initialized `T` and no `&mut T` to the
    /// same location may exist for the reference's lifetime.
    #[inline]
    pub unsafe fn sref<T>(&self, off: Shoff<T>) -> &T {
        &*self.resolve(off)
    }

    /// Computes the offset of a pointer previously obtained from
    /// [`ShmSegment::resolve`].
    ///
    /// # Panics
    ///
    /// Panics if `ptr` does not point inside this segment.
    pub fn offset_of<T>(&self, ptr: *const T) -> Shoff<T> {
        let base = self.inner.base.as_ptr() as usize;
        let p = ptr as usize;
        assert!(
            p >= base && p < base + self.size(),
            "pointer is not inside the segment"
        );
        Shoff::from_raw((p - base) as u64)
    }

    pub(crate) fn header(&self) -> &Header {
        // SAFETY: the header is written at creation and lives at offset 0.
        unsafe { &*(self.inner.base.as_ptr() as *const Header) }
    }

    /// Verifies the segment magic (sanity check after "mapping").
    pub fn validate(&self) -> bool {
        let h = self.header();
        h.magic.load(Ordering::Relaxed) == MAGIC
            && h.total_size == self.size() as u64
            && (HEADER_BYTES as u64) < h.total_size
    }

    /// Reads the user root anchor (offset of the runtime's root object).
    pub fn user_root<T>(&self) -> Shoff<T> {
        Shoff::from_raw(self.header().user_root.load(Ordering::Acquire))
    }

    /// Publishes the user root if it is still unset; returns the winner.
    ///
    /// The first attaching process initializes the runtime state and
    /// publishes it here; latecomers adopt the published root. The CAS makes
    /// the check-then-initialize race safe.
    pub fn init_user_root_once<T>(&self, f: impl FnOnce() -> Shoff<T>) -> Shoff<T> {
        let h = self.header();
        if h.user_root.load(Ordering::Acquire) == 0 {
            let candidate = f();
            assert!(!candidate.is_null(), "user root must not be null");
            match h.user_root.compare_exchange(
                0,
                candidate.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return candidate,
                Err(existing) => return Shoff::from_raw(existing),
            }
        }
        Shoff::from_raw(h.user_root.load(Ordering::Acquire))
    }

    /// Allocates a fresh logical process id (unique per segment lifetime).
    pub(crate) fn next_pid(&self) -> u64 {
        self.header().next_pid.fetch_add(1, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ShmSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmSegment")
            .field("size", &self.size())
            .field("chunks", &self.geometry().n_chunks)
            .field("mappings", &self.mapping_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SegmentConfig {
        SegmentConfig {
            size: 4 * 1024 * 1024,
            max_cpus: 4,
        }
    }

    #[test]
    fn create_and_validate() {
        let seg = ShmSegment::create(small());
        assert!(seg.validate());
        assert_eq!(seg.size(), 4 * 1024 * 1024);
        assert!(seg.geometry().n_chunks > 0);
    }

    #[test]
    fn clone_models_second_mapping() {
        let seg = ShmSegment::create(small());
        assert_eq!(seg.mapping_count(), 1);
        let seg2 = seg.clone();
        assert_eq!(seg.mapping_count(), 2);
        // Both handles see the same memory.
        let off = Shoff::<u64>::from_raw(seg.geometry().data_off as u64);
        unsafe { seg.resolve(off).write(0xdead_beef) };
        assert_eq!(unsafe { *seg2.resolve(off) }, 0xdead_beef);
        drop(seg2);
        assert_eq!(seg.mapping_count(), 1);
    }

    #[test]
    fn open_or_create_returns_same_segment() {
        let (a, created_a) = ShmSegment::open_or_create("test-seg-A", small());
        let (b, created_b) = ShmSegment::open_or_create("test-seg-A", small());
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(a.mapping_count(), 2);
        drop(a);
        drop(b);
        // After all handles drop, reopening creates a fresh segment.
        let (_c, created_c) = ShmSegment::open_or_create("test-seg-A", small());
        assert!(created_c);
    }

    #[test]
    fn offset_of_roundtrip() {
        let seg = ShmSegment::create(small());
        let off = Shoff::<u32>::from_raw(seg.geometry().data_off as u64 + 128);
        let ptr = seg.resolve(off);
        assert_eq!(seg.offset_of(ptr), off);
    }

    #[test]
    #[should_panic(expected = "not inside")]
    fn offset_of_foreign_pointer_panics() {
        let seg = ShmSegment::create(small());
        let x = 5u32;
        let _ = seg.offset_of(&x as *const u32);
    }

    #[test]
    fn user_root_single_initialization() {
        let seg = ShmSegment::create(small());
        assert!(seg.user_root::<u8>().is_null());
        let first = seg.init_user_root_once(|| Shoff::<u8>::from_raw(4096));
        let second = seg.init_user_root_once(|| Shoff::<u8>::from_raw(8192));
        assert_eq!(first.raw(), 4096);
        assert_eq!(second.raw(), 4096, "second initializer must be ignored");
        assert_eq!(seg.user_root::<u8>().raw(), 4096);
    }

    #[test]
    fn pids_are_unique() {
        let seg = ShmSegment::create(small());
        let a = seg.next_pid();
        let b = seg.next_pid();
        assert_ne!(a, b);
    }
}
