//! The shared segment: creation, mapping handles (heap-backed or OS-shared),
//! and raw access.

use nosv_sync::hint::{AtomicU64, Ordering};
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::layout::{SegmentGeometry, CHUNK_SIZE, HEADER_BYTES};
use crate::offset::Shoff;
use crate::os::{probe_os_backend, MapError, OsMapping};

const MAGIC: u64 = 0x6e4f_5356_5348_4d31; // "nOSVSHM1"

/// On-disk/in-memory format version stamped into the header at creation
/// and checked on [`ShmSegment::attach_named`]: a process built against a
/// different layout must not touch the segment.
pub const SEGMENT_VERSION: u64 = 1;

/// Capability bit: the owning runtime accepts foreign-process joins
/// (handshake records in the registry, guest submission rings).
pub const CAP_GUEST_JOIN: u64 = 1;

/// Configuration for creating a segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Total size of the segment in bytes. Defaults to 64 MiB.
    pub size: usize,
    /// Number of CPUs the per-CPU structures are sized for. Defaults to 64.
    pub max_cpus: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            size: 64 * 1024 * 1024,
            max_cpus: 64,
        }
    }
}

/// Fixed-layout header at offset 0 of every segment.
///
/// Everything an attaching process needs to rederive the geometry, plus the
/// `user_root` anchor through which the runtime built on top (nOS-V) finds
/// its own state. `repr(C)` and zero-validity mirror a freshly truncated
/// POSIX segment.
#[repr(C)]
pub(crate) struct Header {
    magic: AtomicU64,
    total_size: u64,
    max_cpus: u64,
    /// Offset of the runtime's root object; 0 until published.
    user_root: AtomicU64,
    /// Monotonic source of logical process ids.
    next_pid: AtomicU64,
    /// Format version ([`SEGMENT_VERSION`]); checked on attach.
    version: u64,
    /// Capability bits advertised by the creator (e.g. [`CAP_GUEST_JOIN`]).
    capabilities: u64,
}

const _: () = assert!(std::mem::size_of::<Header>() <= HEADER_BYTES);

/// What actually holds the segment's bytes.
///
/// `Heap` is the in-process backing (tests, simulator, single-process
/// runtimes): one chunk-aligned `alloc_zeroed` region, freed when the last
/// handle drops. `Os` is a real OS-shared mapping (memfd or `/dev/shm`)
/// that foreign processes can attach to by name — see [`crate::os`].
enum SegmentBacking {
    Heap { layout: Layout },
    Os(OsMapping),
}

struct SegmentInner {
    base: NonNull<u8>,
    backing: SegmentBacking,
    geometry: SegmentGeometry,
}

// SAFETY: the raw region is shared intentionally; all concurrent access to
// initialized metadata goes through atomics and in-segment locks, and the
// allocator hands out disjoint object ranges.
unsafe impl Send for SegmentInner {}
unsafe impl Sync for SegmentInner {}

impl Drop for SegmentInner {
    fn drop(&mut self) {
        match &self.backing {
            SegmentBacking::Heap { layout } => {
                // SAFETY: `base` was allocated with exactly this layout in
                // `create`.
                unsafe { dealloc(self.base.as_ptr(), *layout) };
            }
            // The OsMapping's own Drop unmaps, closes and unpublishes.
            SegmentBacking::Os(_) => {}
        }
    }
}

/// A handle to a shared segment — the in-process equivalent of one
/// process's `mmap` of the POSIX segment.
///
/// Cloning a `ShmSegment` models another process mapping the same segment:
/// all clones see the same memory, and the backing region is released when
/// the last handle drops (the paper's "last process to unregister deletes
/// the segment", §3.3). Named lookup via [`ShmSegment::open_or_create`]
/// mirrors the `shm_open` check-then-initialize startup protocol.
#[derive(Clone)]
pub struct ShmSegment {
    inner: Arc<SegmentInner>,
}

fn named_registry() -> &'static Mutex<HashMap<String, Weak<SegmentInner>>> {
    static NAMED: OnceLock<Mutex<HashMap<String, Weak<SegmentInner>>>> = OnceLock::new();
    NAMED.get_or_init(|| Mutex::new(HashMap::new()))
}

impl ShmSegment {
    /// Creates a new anonymous segment.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot hold the metadata plus one chunk
    /// (see [`SegmentGeometry::compute`]).
    pub fn create(config: SegmentConfig) -> ShmSegment {
        let geometry = SegmentGeometry::compute(config.size, config.max_cpus)
            .expect("segment too small for its metadata");
        // Align the whole segment to CHUNK_SIZE so objects inside chunks are
        // naturally aligned to their (power-of-two) size class.
        let layout = Layout::from_size_align(config.size, CHUNK_SIZE).expect("bad layout");
        // SAFETY: layout has nonzero size (geometry computation succeeded).
        let raw = unsafe { alloc_zeroed(layout) };
        let base = NonNull::new(raw).expect("segment allocation failed");
        let seg = ShmSegment {
            inner: Arc::new(SegmentInner {
                base,
                backing: SegmentBacking::Heap { layout },
                geometry,
            }),
        };
        seg.init_fresh(config);
        seg
    }

    /// Creates an OS-shared segment and publishes it under `name` so that
    /// foreign processes can [`ShmSegment::attach_named`] it.
    ///
    /// The backing is `memfd_create` when available, `shm_open` otherwise
    /// (probed once per process); [`MapError::Unsupported`] when neither
    /// works — callers gate on [`crate::os_backing_available`] and fall
    /// back to [`ShmSegment::create`]. The name must satisfy
    /// `[A-Za-z0-9._-]+` (≤ 128 bytes) and not collide with a live
    /// published segment.
    ///
    /// The segment is fully initialized (header stamped with
    /// [`SEGMENT_VERSION`] and `capabilities`, SLAB carved) *before* the
    /// name is published, so an attacher can never observe a half-built
    /// segment.
    pub fn create_named(
        name: &str,
        config: SegmentConfig,
        capabilities: u64,
    ) -> Result<ShmSegment, MapError> {
        if !crate::os::valid_name(name) {
            return Err(MapError::BadName);
        }
        let backend = probe_os_backend().ok_or(MapError::Unsupported)?;
        let geometry = SegmentGeometry::compute(config.size, config.max_cpus).ok_or(
            MapError::InvalidSegment("segment too small for its metadata"),
        )?;
        let mapping = OsMapping::create(name, config.size, backend)?;
        let base = NonNull::new(mapping.base()).ok_or(MapError::InvalidSegment("null mapping"))?;
        let seg = ShmSegment {
            inner: Arc::new(SegmentInner {
                base,
                backing: SegmentBacking::Os(mapping),
                geometry,
            }),
        };
        seg.init_fresh_with(config, capabilities);
        // Publish only now: the link file's appearance is the cross-process
        // signal that the header and SLAB are ready.
        match &seg.inner.backing {
            SegmentBacking::Os(m) => m.publish()?,
            SegmentBacking::Heap { .. } => unreachable!(),
        }
        Ok(seg)
    }

    /// Attaches to the OS-shared segment published under `name` — the
    /// foreign-process counterpart of [`ShmSegment::create_named`].
    ///
    /// Validates magic, size and [`SEGMENT_VERSION`] against the mapped
    /// header and rederives the geometry from it (deterministic given
    /// `total_size` and `max_cpus`), exactly as the paper's startup
    /// protocol rederives everything from the mapped POSIX segment.
    pub fn attach_named(name: &str) -> Result<ShmSegment, MapError> {
        if !crate::os::valid_name(name) {
            return Err(MapError::BadName);
        }
        let mapping = OsMapping::attach(name)?;
        // SAFETY: the mapping is at least a page; the header is repr(C)
        // atomics/words at offset 0 and every bit pattern is a valid value.
        let h = unsafe { &*(mapping.base() as *const Header) };
        if h.magic.load(Ordering::Acquire) != MAGIC {
            return Err(MapError::InvalidSegment("bad magic"));
        }
        if h.version != SEGMENT_VERSION {
            return Err(MapError::InvalidSegment("incompatible segment version"));
        }
        if h.total_size != mapping.len() as u64 {
            return Err(MapError::InvalidSegment(
                "header size disagrees with mapping",
            ));
        }
        let geometry = SegmentGeometry::compute(h.total_size as usize, h.max_cpus as usize)
            .ok_or(MapError::InvalidSegment("geometry does not compute"))?;
        let base = NonNull::new(mapping.base()).ok_or(MapError::InvalidSegment("null mapping"))?;
        Ok(ShmSegment {
            inner: Arc::new(SegmentInner {
                base,
                backing: SegmentBacking::Os(mapping),
                geometry,
            }),
        })
    }

    /// Header + SLAB initialization of a freshly zeroed region.
    fn init_fresh(&self, config: SegmentConfig) {
        self.init_fresh_with(config, 0);
    }

    fn init_fresh_with(&self, config: SegmentConfig, capabilities: u64) {
        {
            let h = self.header();
            let hp = h as *const Header as *mut Header;
            // SAFETY: we are the only owner during creation (nothing is
            // published yet); the region is zeroed.
            unsafe {
                (*hp).total_size = config.size as u64;
                (*hp).max_cpus = config.max_cpus as u64;
                (*hp).version = SEGMENT_VERSION;
                (*hp).capabilities = capabilities;
            }
            h.next_pid.store(1, Ordering::Relaxed);
            // The magic is stored last, with Release: an attacher's Acquire
            // load of it orders all the plain header words above.
            h.magic.store(MAGIC, Ordering::Release);
        }
        crate::slab::init_slab(self);
    }

    /// Opens the segment registered under `name`, creating and registering
    /// it if absent — the paper's startup protocol (§3.3): "the library
    /// checks during startup for the existence of a specific POSIX shared
    /// memory segment and initializes the segment if it does not exist".
    ///
    /// Returns the handle and whether this call created the segment.
    pub fn open_or_create(name: &str, config: SegmentConfig) -> (ShmSegment, bool) {
        let mut reg = named_registry().lock().expect("named registry poisoned");
        if let Some(weak) = reg.get(name) {
            if let Some(inner) = weak.upgrade() {
                return (ShmSegment { inner }, false);
            }
        }
        let seg = ShmSegment::create(config);
        reg.insert(name.to_string(), Arc::downgrade(&seg.inner));
        (seg, true)
    }

    /// The segment's geometry (region offsets, chunk count).
    #[inline]
    pub fn geometry(&self) -> &SegmentGeometry {
        &self.inner.geometry
    }

    /// Total size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.inner.geometry.total_size
    }

    /// Number of "mappings" (handles) currently alive, this one included.
    ///
    /// Counts only this process's handles: with an OS-shared backing,
    /// foreign processes' mappings are invisible here (track them through
    /// the registry instead).
    pub fn mapping_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Whether this segment is a real OS-shared mapping (created by
    /// [`ShmSegment::create_named`] or [`ShmSegment::attach_named`]) as
    /// opposed to the in-process heap backing.
    pub fn is_os_shared(&self) -> bool {
        matches!(self.inner.backing, SegmentBacking::Os(_))
    }

    /// Which OS backend holds the bytes, when [`ShmSegment::is_os_shared`].
    pub fn os_backend(&self) -> Option<crate::os::OsBackend> {
        match &self.inner.backing {
            SegmentBacking::Os(m) => Some(m.backend()),
            SegmentBacking::Heap { .. } => None,
        }
    }

    /// Capability bits stamped into the header at creation (e.g.
    /// [`CAP_GUEST_JOIN`]).
    pub fn capabilities(&self) -> u64 {
        self.header().capabilities
    }

    /// Resolves a typed offset to a raw pointer into this mapping.
    ///
    /// The returned pointer is only meaningful while the segment is alive;
    /// callers must uphold aliasing rules for the pointee (the allocator
    /// guarantees distinct allocations never overlap).
    #[inline]
    pub fn resolve<T>(&self, off: Shoff<T>) -> *mut T {
        debug_assert!(!off.is_null(), "resolving null Shoff");
        debug_assert!(
            off.raw() as usize + std::mem::size_of::<T>() <= self.size(),
            "Shoff {:#x} + {} escapes segment of {} bytes",
            off.raw(),
            std::mem::size_of::<T>(),
            self.size()
        );
        // SAFETY: bounds checked above (in debug); offset arithmetic stays
        // within the allocation.
        unsafe { self.inner.base.as_ptr().add(off.raw() as usize).cast::<T>() }
    }

    /// Resolves an offset to a shared reference.
    ///
    /// # Safety
    ///
    /// The offset must point to an initialized `T` and no `&mut T` to the
    /// same location may exist for the reference's lifetime.
    #[inline]
    pub unsafe fn sref<T>(&self, off: Shoff<T>) -> &T {
        &*self.resolve(off)
    }

    /// Computes the offset of a pointer previously obtained from
    /// [`ShmSegment::resolve`].
    ///
    /// # Panics
    ///
    /// Panics if `ptr` does not point inside this segment.
    pub fn offset_of<T>(&self, ptr: *const T) -> Shoff<T> {
        let base = self.inner.base.as_ptr() as usize;
        let p = ptr as usize;
        assert!(
            p >= base && p < base + self.size(),
            "pointer is not inside the segment"
        );
        Shoff::from_raw((p - base) as u64)
    }

    pub(crate) fn header(&self) -> &Header {
        // SAFETY: the header is written at creation and lives at offset 0.
        unsafe { &*(self.inner.base.as_ptr() as *const Header) }
    }

    /// Verifies the segment magic (sanity check after "mapping").
    pub fn validate(&self) -> bool {
        let h = self.header();
        h.magic.load(Ordering::Relaxed) == MAGIC
            && h.total_size == self.size() as u64
            && (HEADER_BYTES as u64) < h.total_size
    }

    /// Reads the user root anchor (offset of the runtime's root object).
    pub fn user_root<T>(&self) -> Shoff<T> {
        Shoff::from_raw(self.header().user_root.load(Ordering::Acquire))
    }

    /// Publishes the user root if it is still unset; returns the winner.
    ///
    /// The first attaching process initializes the runtime state and
    /// publishes it here; latecomers adopt the published root. The CAS makes
    /// the check-then-initialize race safe.
    pub fn init_user_root_once<T>(&self, f: impl FnOnce() -> Shoff<T>) -> Shoff<T> {
        let h = self.header();
        if h.user_root.load(Ordering::Acquire) == 0 {
            let candidate = f();
            assert!(!candidate.is_null(), "user root must not be null");
            match h.user_root.compare_exchange(
                0,
                candidate.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return candidate,
                Err(existing) => return Shoff::from_raw(existing),
            }
        }
        Shoff::from_raw(h.user_root.load(Ordering::Acquire))
    }

    /// Allocates a fresh logical process id (unique per segment lifetime).
    pub(crate) fn next_pid(&self) -> u64 {
        self.header().next_pid.fetch_add(1, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ShmSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmSegment")
            .field("size", &self.size())
            .field("chunks", &self.geometry().n_chunks)
            .field("mappings", &self.mapping_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SegmentConfig {
        SegmentConfig {
            size: 4 * 1024 * 1024,
            max_cpus: 4,
        }
    }

    #[test]
    fn create_and_validate() {
        let seg = ShmSegment::create(small());
        assert!(seg.validate());
        assert_eq!(seg.size(), 4 * 1024 * 1024);
        assert!(seg.geometry().n_chunks > 0);
    }

    #[test]
    fn clone_models_second_mapping() {
        let seg = ShmSegment::create(small());
        assert_eq!(seg.mapping_count(), 1);
        let seg2 = seg.clone();
        assert_eq!(seg.mapping_count(), 2);
        // Both handles see the same memory.
        let off = Shoff::<u64>::from_raw(seg.geometry().data_off as u64);
        // SAFETY: data_off is in-bounds and chunk-aligned; both handles map
        // the same live segment.
        unsafe { seg.resolve(off).write(0xdead_beef) };
        // SAFETY: reads the word just written, through the second handle.
        assert_eq!(unsafe { *seg2.resolve(off) }, 0xdead_beef);
        drop(seg2);
        assert_eq!(seg.mapping_count(), 1);
    }

    #[test]
    fn open_or_create_returns_same_segment() {
        let (a, created_a) = ShmSegment::open_or_create("test-seg-A", small());
        let (b, created_b) = ShmSegment::open_or_create("test-seg-A", small());
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(a.mapping_count(), 2);
        drop(a);
        drop(b);
        // After all handles drop, reopening creates a fresh segment.
        let (_c, created_c) = ShmSegment::open_or_create("test-seg-A", small());
        assert!(created_c);
    }

    #[test]
    fn offset_of_roundtrip() {
        let seg = ShmSegment::create(small());
        let off = Shoff::<u32>::from_raw(seg.geometry().data_off as u64 + 128);
        let ptr = seg.resolve(off);
        assert_eq!(seg.offset_of(ptr), off);
    }

    #[test]
    #[should_panic(expected = "not inside")]
    fn offset_of_foreign_pointer_panics() {
        let seg = ShmSegment::create(small());
        let x = 5u32;
        let _ = seg.offset_of(&x as *const u32);
    }

    #[test]
    fn user_root_single_initialization() {
        let seg = ShmSegment::create(small());
        assert!(seg.user_root::<u8>().is_null());
        let first = seg.init_user_root_once(|| Shoff::<u8>::from_raw(4096));
        let second = seg.init_user_root_once(|| Shoff::<u8>::from_raw(8192));
        assert_eq!(first.raw(), 4096);
        assert_eq!(second.raw(), 4096, "second initializer must be ignored");
        assert_eq!(seg.user_root::<u8>().raw(), 4096);
    }

    #[test]
    fn pids_are_unique() {
        let seg = ShmSegment::create(small());
        let a = seg.next_pid();
        let b = seg.next_pid();
        assert_ne!(a, b);
    }

    #[test]
    fn heap_backing_reports_not_os_shared() {
        let seg = ShmSegment::create(small());
        assert!(!seg.is_os_shared());
        assert_eq!(seg.os_backend(), None);
        assert_eq!(seg.capabilities(), 0);
    }

    #[test]
    fn named_segment_cross_mapping_roundtrip() {
        if !crate::os_backing_available() {
            eprintln!("skipping: no OS backing available");
            return;
        }
        let name = format!("seg-test-{}", std::process::id());
        let seg = ShmSegment::create_named(&name, small(), CAP_GUEST_JOIN).unwrap();
        assert!(seg.is_os_shared());
        assert!(seg.validate());
        assert_eq!(seg.capabilities(), CAP_GUEST_JOIN);
        // A named attach is a *separate mapping* (usually at a different
        // address), which is what exercises position independence.
        let other = ShmSegment::attach_named(&name).unwrap();
        assert!(other.is_os_shared());
        assert!(other.validate());
        assert_eq!(other.size(), seg.size());
        assert_eq!(other.geometry().n_chunks, seg.geometry().n_chunks);
        assert_eq!(other.capabilities(), CAP_GUEST_JOIN);
        // Objects allocated through one mapping are visible through — and
        // freeable from — the other (§3.5's cross-process free).
        let off = seg.alloc_zeroed(128, 0).unwrap();
        // SAFETY: `off` was just allocated, so it is in-bounds and unshared.
        unsafe { seg.resolve(off).write(0x42u8) };
        // SAFETY: reads the byte just written, through the other mapping.
        assert_eq!(unsafe { *other.resolve(off) }, 0x42);
        other.free(off, 1);
        let stats = seg.alloc_stats();
        assert_eq!(stats.total_allocs, stats.total_frees);
        drop(other);
        drop(seg);
        // Owner gone: the name is unpublished.
        assert!(ShmSegment::attach_named(&name).is_err());
    }

    #[test]
    fn attach_unpublished_name_fails() {
        assert!(ShmSegment::attach_named("never-published-name-xyz").is_err());
    }

    #[test]
    fn create_named_rejects_bad_names() {
        assert_eq!(
            ShmSegment::create_named("bad name!", small(), 0).unwrap_err(),
            MapError::BadName
        );
    }
}
