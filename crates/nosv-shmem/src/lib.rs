//! Shared-memory substrate for the nOS-V reproduction.
//!
//! In the paper (§3.1, §3.5), almost all of nOS-V's state lives in a POSIX
//! shared-memory segment mapped by every participating process, and a custom
//! SLAB-style allocator with per-CPU caches manages that fixed-size region
//! so that *any* process can free memory allocated by *any other* process.
//!
//! This crate reproduces that substrate behind a **backing abstraction**
//! (see `DESIGN.md` for the full rationale): a segment's bytes come from one
//! of two interchangeable backings, chosen at creation.
//!
//! * **Heap backing** ([`ShmSegment::create`] / [`ShmSegment::open_or_create`]):
//!   one chunk-aligned in-process allocation. This is what unit tests, the
//!   discrete-event simulator, and single-process runtimes use — cheap,
//!   deterministic, no OS namespace to clean up.
//! * **OS-shared backing** ([`ShmSegment::create_named`] /
//!   [`ShmSegment::attach_named`]): a real `memfd_create` (fallback
//!   `shm_open`) object mapped `MAP_SHARED`, published under a name so a
//!   *foreign OS process* can map the same physical pages and co-execute —
//!   the paper's actual deployment model. Availability is probed at runtime
//!   ([`os_backing_available`]); sandboxes without it keep working on the
//!   heap backing.
//!
//! The two backings are indistinguishable above the mapping layer because
//! everything is built exactly as cross-process shared memory demands:
//!
//! * **No host pointers inside the segment.** All intra-segment references
//!   are [`Shoff<T>`] / [`AtomicShoff<T>`] — typed byte offsets from the
//!   segment base — so the segment stays valid when mapped at a different
//!   address in every process (named attaches really do get different
//!   addresses).
//! * **Fixed-layout, zero-initializable metadata.** Headers, chunk tables,
//!   the registry and all locks ([`nosv_sync::RawSpinMutex`]) are
//!   plain-old-data and valid when zeroed, exactly as a fresh `ftruncate`d
//!   POSIX segment is; an attacher rederives the full [`SegmentGeometry`]
//!   from the header alone after a magic/version check.
//! * **SLAB allocator with per-CPU magazines** (`SlabAlloc`, §3.5): the
//!   region is split into 64 KiB chunks; each chunk serves one power-of-two
//!   size class; per-CPU magazine caches absorb the fast path; the global
//!   chunk table handles refills, flushes and multi-chunk (large)
//!   allocations. Free works from any attached process because the
//!   allocator's metadata lives in the segment itself.
//! * **Lock-free submission rings** ([`SubmitRing`], §3.4): bounded
//!   multi-producer/single-consumer rings of offset payloads, the channel
//!   through which attached processes feed the shared scheduler without
//!   touching its delegation lock. Zero-valid headers, slot arrays
//!   allocated from the SLAB like every other in-segment object.
//! * **Idle-CPU claim table** ([`ClaimTable`]): a bitmap plus per-CPU
//!   handoff slots through which a submission CAS-claims an idle CPU and
//!   hands its task straight over — no ring, no queue, no lock. The
//!   direct-dispatch fast path of the sharded scheduler.
//! * **Process registry** (`Registry`, §3.3): processes attach to the
//!   segment at startup and detach at exit; the last process to detach is
//!   told so it can tear the segment down, mirroring the unlink-on-last-exit
//!   life cycle of the paper. Each slot carries the cross-process attach
//!   record ([`SlotView`]) — OS pid, liveness heartbeat, [`JoinState`]
//!   handshake word, progress counters — that `nosv`'s join handshake and
//!   crash-reclaim sweeper operate on.

#![warn(missing_docs)]

mod claim;
mod layout;
mod offset;
pub mod os;
mod registry;
mod ring;
mod segment;
mod slab;

pub use claim::{ClaimTable, CLAIM_MAX_CPUS};
pub use layout::{SegmentGeometry, CHUNK_SIZE, MAX_PROCS, NUM_CLASSES, SIZE_CLASSES};
pub use offset::{AtomicShoff, Shoff};
pub use os::{os_backing_available, process_alive, MapError, OsBackend};
pub use registry::{AttachError, JoinState, ProcessId, SlotView};
pub use ring::{LaneRing, RingSlot, SubmitRing, MAX_SUBMIT_LANES};
pub use segment::{SegmentConfig, ShmSegment, CAP_GUEST_JOIN, SEGMENT_VERSION};
pub use slab::{AllocError, AllocStats};
