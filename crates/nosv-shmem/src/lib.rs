//! Shared-memory substrate for the nOS-V reproduction.
//!
//! In the paper (§3.1, §3.5), almost all of nOS-V's state lives in a POSIX
//! shared-memory segment mapped by every participating process, and a custom
//! SLAB-style allocator with per-CPU caches manages that fixed-size region
//! so that *any* process can free memory allocated by *any other* process.
//!
//! This crate reproduces that substrate with one substitution, documented in
//! `DESIGN.md`: the segment is a single in-process allocation instead of a
//! `shm_open`/`mmap` mapping (the evaluation sandbox is a 1-CPU container
//! where real multi-process co-execution cannot be demonstrated anyway).
//! Everything else is built exactly as cross-process shared memory demands:
//!
//! * **No host pointers inside the segment.** All intra-segment references
//!   are [`Shoff<T>`] / [`AtomicShoff<T>`] — typed byte offsets from the
//!   segment base — so the segment would remain valid if mapped at a
//!   different address in every process.
//! * **Fixed-layout, zero-initializable metadata.** Headers, chunk tables,
//!   the registry and all locks ([`nosv_sync::RawSpinMutex`]) are
//!   plain-old-data and valid when zeroed, exactly as a fresh `ftruncate`d
//!   POSIX segment would be.
//! * **SLAB allocator with per-CPU magazines** (`SlabAlloc`, §3.5): the
//!   region is split into 64 KiB chunks; each chunk serves one power-of-two
//!   size class; per-CPU magazine caches absorb the fast path; the global
//!   chunk table handles refills, flushes and multi-chunk (large)
//!   allocations. Free works from any attached process because the
//!   allocator's metadata lives in the segment itself.
//! * **Lock-free submission rings** ([`SubmitRing`], §3.4): bounded
//!   multi-producer/single-consumer rings of offset payloads, the channel
//!   through which attached processes feed the shared scheduler without
//!   touching its delegation lock. Zero-valid headers, slot arrays
//!   allocated from the SLAB like every other in-segment object.
//! * **Idle-CPU claim table** ([`ClaimTable`]): a bitmap plus per-CPU
//!   handoff slots through which a submission CAS-claims an idle CPU and
//!   hands its task straight over — no ring, no queue, no lock. The
//!   direct-dispatch fast path of the sharded scheduler.
//! * **Process registry** (`Registry`, §3.3): processes attach to the
//!   segment at startup and detach at exit; the last process to detach is
//!   told so it can tear the segment down, mirroring the unlink-on-last-exit
//!   life cycle of the paper.

#![warn(missing_docs)]

mod claim;
mod layout;
mod offset;
mod registry;
mod ring;
mod segment;
mod slab;

pub use claim::{ClaimTable, CLAIM_MAX_CPUS};
pub use layout::{SegmentGeometry, CHUNK_SIZE, MAX_PROCS, NUM_CLASSES, SIZE_CLASSES};
pub use offset::{AtomicShoff, Shoff};
pub use registry::{AttachError, ProcessId};
pub use ring::{RingSlot, SubmitRing};
pub use segment::{SegmentConfig, ShmSegment};
pub use slab::{AllocError, AllocStats};
