//! Process registry: attach/detach life cycle (paper §3.3).
//!
//! Every process using the segment registers itself in a fixed table of
//! [`crate::MAX_PROCS`] slots. The registry backs two behaviours from the
//! paper: the runtime knows which logical processes are attached (the
//! scheduler iterates them for fairness), and "the last process to
//! unregister will delete the whole shared memory segment" — surfaced here
//! as the remaining-count return of [`ShmSegment::detach`].

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::layout::{MAX_PROCS, PROC_SLOT_BYTES};
use crate::offset::Shoff;
use crate::segment::ShmSegment;

/// Identity of an attached logical process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId {
    /// Unique id (never reused within a segment's lifetime).
    pub pid: u64,
    /// Registry slot index occupied by this process.
    pub slot: u32,
}

/// Failure to attach to a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachError {
    /// All [`MAX_PROCS`] registry slots are occupied.
    Full,
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Full => write!(f, "registry full: {MAX_PROCS} processes attached"),
        }
    }
}

impl std::error::Error for AttachError {}

const SLOT_FREE: u32 = 0;
const SLOT_CLAIMED: u32 = 1;

/// One registry slot, padded to [`PROC_SLOT_BYTES`]. Zero == free.
#[repr(C)]
struct ProcSlot {
    state: AtomicU32,
    _pad: u32,
    pid: AtomicU64,
}

const _: () = assert!(std::mem::size_of::<ProcSlot>() <= PROC_SLOT_BYTES);

fn slot(seg: &ShmSegment, i: usize) -> &ProcSlot {
    debug_assert!(i < MAX_PROCS);
    let off =
        Shoff::<ProcSlot>::from_raw((seg.geometry().registry_off + i * PROC_SLOT_BYTES) as u64);
    // SAFETY: region reserved by the geometry; zeroed state is a free slot.
    unsafe { seg.sref(off) }
}

impl ShmSegment {
    /// Registers a logical process with the segment and returns its identity.
    pub fn attach(&self) -> Result<ProcessId, AttachError> {
        for i in 0..MAX_PROCS {
            let s = slot(self, i);
            if s.state.load(Ordering::Relaxed) == SLOT_FREE
                && s.state
                    .compare_exchange(SLOT_FREE, SLOT_CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                let pid = self.next_pid();
                s.pid.store(pid, Ordering::Release);
                return Ok(ProcessId {
                    pid,
                    slot: i as u32,
                });
            }
        }
        Err(AttachError::Full)
    }

    /// Unregisters a process; returns how many processes remain attached.
    ///
    /// A return of `0` means the caller was the last process out and is
    /// responsible for tearing the runtime state down (in the real system,
    /// `shm_unlink`; here, dropping the last [`ShmSegment`] handle).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not match an attached process (double detach).
    pub fn detach(&self, id: ProcessId) -> usize {
        let s = slot(self, id.slot as usize);
        assert_eq!(
            s.pid.load(Ordering::Acquire),
            id.pid,
            "detach of a process that is not attached (slot {})",
            id.slot
        );
        assert_eq!(s.state.load(Ordering::Relaxed), SLOT_CLAIMED);
        s.pid.store(0, Ordering::Relaxed);
        s.state.store(SLOT_FREE, Ordering::Release);
        self.attached_count()
    }

    /// Number of processes currently attached (racy snapshot).
    pub fn attached_count(&self) -> usize {
        (0..MAX_PROCS)
            .filter(|&i| slot(self, i).state.load(Ordering::Relaxed) == SLOT_CLAIMED)
            .count()
    }

    /// Pids of all attached processes (racy snapshot, ascending slot order).
    pub fn attached_pids(&self) -> Vec<u64> {
        (0..MAX_PROCS)
            .filter_map(|i| {
                let s = slot(self, i);
                if s.state.load(Ordering::Relaxed) == SLOT_CLAIMED {
                    Some(s.pid.load(Ordering::Relaxed))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentConfig;

    fn seg() -> ShmSegment {
        ShmSegment::create(SegmentConfig {
            size: 4 * 1024 * 1024,
            max_cpus: 2,
        })
    }

    #[test]
    fn attach_detach_lifecycle() {
        let s = seg();
        assert_eq!(s.attached_count(), 0);
        let a = s.attach().unwrap();
        let b = s.attach().unwrap();
        assert_ne!(a.pid, b.pid);
        assert_eq!(s.attached_count(), 2);
        assert_eq!(s.detach(a), 1);
        assert_eq!(s.detach(b), 0, "last detacher sees zero remaining");
    }

    #[test]
    fn pids_visible_to_other_mappings() {
        let s = seg();
        let s2 = s.clone();
        let a = s.attach().unwrap();
        assert_eq!(s2.attached_pids(), vec![a.pid]);
        s2.detach(a);
        assert!(s.attached_pids().is_empty());
    }

    #[test]
    fn registry_fills_up() {
        let s = seg();
        let ids: Vec<_> = (0..MAX_PROCS).map(|_| s.attach().unwrap()).collect();
        assert_eq!(s.attach().unwrap_err(), AttachError::Full);
        for id in ids {
            s.detach(id);
        }
        assert!(s.attach().is_ok());
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn double_detach_panics() {
        let s = seg();
        let a = s.attach().unwrap();
        s.detach(a);
        s.detach(a);
    }

    #[test]
    fn concurrent_attach_yields_unique_slots() {
        use std::thread;
        let s = seg();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                thread::spawn(move || s.attach().unwrap())
            })
            .collect();
        let ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut slots: Vec<_> = ids.iter().map(|i| i.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 8, "slots must be unique");
        for id in ids {
            s.detach(id);
        }
    }
}
