//! Process registry: attach/detach life cycle (paper §3.3).
//!
//! Every process using the segment registers itself in a fixed table of
//! [`crate::MAX_PROCS`] slots. The registry backs two behaviours from the
//! paper: the runtime knows which logical processes are attached (the
//! scheduler iterates them for fairness), and "the last process to
//! unregister will delete the whole shared memory segment" — surfaced here
//! as the remaining-count return of [`ShmSegment::detach`].

use nosv_sync::hint::{crash_point, AtomicU32, AtomicU64, Ordering};

use crate::layout::{MAX_PROCS, PROC_SLOT_BYTES};
use crate::offset::Shoff;
use crate::segment::ShmSegment;

/// Identity of an attached logical process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId {
    /// Unique id (never reused within a segment's lifetime).
    pub pid: u64,
    /// Registry slot index occupied by this process.
    pub slot: u32,
}

/// Failure to attach to a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachError {
    /// All [`MAX_PROCS`] registry slots are occupied.
    Full,
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Full => write!(f, "registry full: {MAX_PROCS} processes attached"),
        }
    }
}

impl std::error::Error for AttachError {}

const SLOT_FREE: u32 = 0;
const SLOT_CLAIMED: u32 = 1;

/// Join-handshake state of an attached process (the `join_state` word of
/// its registry slot). Plain host attachments stay at [`JoinState::None`];
/// foreign-process guests walk `Requested → Active → (Leaving | Dead)`
/// under the handshake protocol in `nosv::ipc`.
#[repr(u32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinState {
    /// Not a guest (host attachment), the zero-valid default.
    None = 0,
    /// Guest has claimed the slot and awaits the host's acknowledgement.
    Requested = 1,
    /// Host acknowledged: submission rings are live, the guest may submit.
    Active = 2,
    /// Guest asked for a clean detach; the host unregisters it once its
    /// queues drain.
    Leaving = 3,
    /// Host declared the guest dead (crash-reclaim in progress).
    Dead = 4,
}

impl JoinState {
    /// Decodes a raw `join_state` word; unknown values read as `Dead`
    /// (the conservative interpretation for a shared word a buggy or
    /// hostile peer could scribble).
    pub fn from_u32(raw: u32) -> JoinState {
        match raw {
            0 => JoinState::None,
            1 => JoinState::Requested,
            2 => JoinState::Active,
            3 => JoinState::Leaving,
            _ => JoinState::Dead,
        }
    }
}

/// One registry slot, padded to [`PROC_SLOT_BYTES`]. Zero == free.
///
/// Beyond the claim state and logical pid, a slot carries the attach
/// record the cross-process handshake and the crash-reclaim sweeper work
/// from: the OS pid (liveness probe target), a heartbeat epoch the guest
/// bumps while healthy, the join state, and submitted/completed counters
/// through which a guest (which owns no workers) observes its tasks'
/// progress.
#[repr(C)]
struct ProcSlot {
    state: AtomicU32,
    join_state: AtomicU32,
    pid: AtomicU64,
    os_pid: AtomicU64,
    heartbeat: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
}

const _: () = assert!(std::mem::size_of::<ProcSlot>() <= PROC_SLOT_BYTES);

/// Snapshot of one registry slot's attach record (racy, for sweepers and
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Logical process id.
    pub pid: u64,
    /// OS pid recorded at attach (0 for pre-IPC attachments).
    pub os_pid: u64,
    /// Join-handshake state.
    pub join_state: JoinState,
    /// Liveness heartbeat epoch.
    pub heartbeat: u64,
    /// Tasks the process has submitted.
    pub submitted: u64,
    /// Tasks of the process the runtime has completed.
    pub completed: u64,
}

fn slot(seg: &ShmSegment, i: usize) -> &ProcSlot {
    debug_assert!(i < MAX_PROCS);
    let off =
        Shoff::<ProcSlot>::from_raw((seg.geometry().registry_off + i * PROC_SLOT_BYTES) as u64);
    // SAFETY: region reserved by the geometry; zeroed state is a free slot.
    unsafe { seg.sref(off) }
}

impl ShmSegment {
    /// Registers a logical process with the segment and returns its identity.
    pub fn attach(&self) -> Result<ProcessId, AttachError> {
        self.attach_with(JoinState::None)
    }

    /// Registers a *foreign-process guest*: claims a slot like
    /// [`ShmSegment::attach`] but records the caller's OS pid, seeds the
    /// heartbeat, and enters [`JoinState::Requested`] so the host's
    /// reactor can acknowledge the join (flipping it to
    /// [`JoinState::Active`]).
    pub fn attach_guest(&self) -> Result<ProcessId, AttachError> {
        self.attach_with(JoinState::Requested)
    }

    fn attach_with(&self, join: JoinState) -> Result<ProcessId, AttachError> {
        for i in 0..MAX_PROCS {
            let s = slot(self, i);
            if s.state.load(Ordering::Relaxed) == SLOT_FREE
                && s.state
                    .compare_exchange(SLOT_FREE, SLOT_CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                let pid = self.next_pid();
                // Death here leaves the worst half-open shape: the slot is
                // CLAIMED but carries no os_pid to probe — only the
                // reactor's time bound can free it (`reclaim_half_open`).
                crash_point("registry.claim.won");
                s.os_pid.store(std::process::id() as u64, Ordering::Relaxed);
                // Death here is the probeable half-open shape: os_pid is
                // recorded, so a sweeper can test liveness and free the
                // slot as soon as the process is gone.
                crash_point("registry.record.published");
                s.heartbeat.store(1, Ordering::Relaxed);
                s.submitted.store(0, Ordering::Relaxed);
                s.completed.store(0, Ordering::Relaxed);
                // The join state is published after the record is complete;
                // its Release pairs with the reactor's Acquire scan.
                s.join_state.store(join as u32, Ordering::Release);
                s.pid.store(pid, Ordering::Release);
                return Ok(ProcessId {
                    pid,
                    slot: i as u32,
                });
            }
        }
        Err(AttachError::Full)
    }

    /// Unregisters a process; returns how many processes remain attached.
    ///
    /// A return of `0` means the caller was the last process out and is
    /// responsible for tearing the runtime state down (in the real system,
    /// `shm_unlink`; here, dropping the last [`ShmSegment`] handle).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not match an attached process (double detach).
    pub fn detach(&self, id: ProcessId) -> usize {
        let s = slot(self, id.slot as usize);
        assert_eq!(
            s.pid.load(Ordering::Acquire),
            id.pid,
            "detach of a process that is not attached (slot {})",
            id.slot
        );
        assert_eq!(s.state.load(Ordering::Relaxed), SLOT_CLAIMED);
        s.pid.store(0, Ordering::Relaxed);
        s.os_pid.store(0, Ordering::Relaxed);
        s.heartbeat.store(0, Ordering::Relaxed);
        s.submitted.store(0, Ordering::Relaxed);
        s.completed.store(0, Ordering::Relaxed);
        s.join_state
            .store(JoinState::None as u32, Ordering::Relaxed);
        s.state.store(SLOT_FREE, Ordering::Release);
        self.attached_count()
    }

    /// Frees a *half-open* registry slot: one whose attacher claimed the
    /// state word but died before publishing its pid (the window between
    /// the claim CAS and the `pid` Release store in `attach_with`).
    /// Without repair such a slot is leaked forever — no [`ProcessId`]
    /// names it, so neither [`ShmSegment::detach`] nor the join-state
    /// machinery can ever touch it.
    ///
    /// Returns `true` when the slot matched the half-open shape
    /// (`CLAIMED`, `pid == 0`, join state [`JoinState::None`] or
    /// [`JoinState::Requested`]) and was freed.
    ///
    /// # Contract
    ///
    /// The half-open shape is also what every *live* attacher exhibits
    /// for the few instructions between its claim CAS and its pid
    /// publish, and nothing in the record can distinguish the two — so
    /// the caller must first establish the attacher is really gone:
    /// either the recorded `os_pid` is nonzero and its process is dead,
    /// or the slot has held the shape for a time bound generous next to
    /// an attach's instruction count (the reactor uses the join
    /// timeout). Calling this against a live mid-attach process loses
    /// its slot record and corrupts the registry.
    pub fn reclaim_half_open(&self, i: u32) -> bool {
        if i as usize >= MAX_PROCS {
            return false;
        }
        let s = slot(self, i as usize);
        if s.state.load(Ordering::Acquire) != SLOT_CLAIMED || s.pid.load(Ordering::Acquire) != 0 {
            return false;
        }
        match JoinState::from_u32(s.join_state.load(Ordering::Acquire)) {
            JoinState::None | JoinState::Requested => {}
            // A published join state with pid == 0 is not a shape
            // attach_with can leave; treat it as not ours to free.
            _ => return false,
        }
        s.os_pid.store(0, Ordering::Relaxed);
        s.heartbeat.store(0, Ordering::Relaxed);
        s.submitted.store(0, Ordering::Relaxed);
        s.completed.store(0, Ordering::Relaxed);
        s.join_state
            .store(JoinState::None as u32, Ordering::Relaxed);
        s.state.store(SLOT_FREE, Ordering::Release);
        true
    }

    /// Snapshot of slot `i`'s attach record, or `None` when the slot is
    /// free. Racy by nature (the sweep re-validates through
    /// [`ShmSegment::set_join_state`]'s CAS before acting).
    pub fn slot_view(&self, i: u32) -> Option<SlotView> {
        if i as usize >= MAX_PROCS {
            return None;
        }
        let s = slot(self, i as usize);
        if s.state.load(Ordering::Acquire) != SLOT_CLAIMED {
            return None;
        }
        Some(SlotView {
            pid: s.pid.load(Ordering::Acquire),
            os_pid: s.os_pid.load(Ordering::Relaxed),
            join_state: JoinState::from_u32(s.join_state.load(Ordering::Acquire)),
            heartbeat: s.heartbeat.load(Ordering::Relaxed),
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Acquire),
        })
    }

    /// Transitions `id`'s join state `from → to` by CAS; `false` when the
    /// slot is no longer `id`'s or the state has moved on. This is what
    /// makes handshake/sweeper decisions race-safe over the racy
    /// [`ShmSegment::slot_view`] snapshots.
    pub fn set_join_state(&self, id: ProcessId, from: JoinState, to: JoinState) -> bool {
        let s = slot(self, id.slot as usize);
        if s.pid.load(Ordering::Acquire) != id.pid {
            return false;
        }
        s.join_state
            .compare_exchange(from as u32, to as u32, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Current join state of `id`, or `None` when the slot is no longer
    /// `id`'s (freed or reused).
    pub fn join_state(&self, id: ProcessId) -> Option<JoinState> {
        let s = slot(self, id.slot as usize);
        if s.state.load(Ordering::Acquire) != SLOT_CLAIMED
            || s.pid.load(Ordering::Acquire) != id.pid
        {
            return None;
        }
        Some(JoinState::from_u32(s.join_state.load(Ordering::Acquire)))
    }

    /// Bumps `id`'s liveness heartbeat epoch (a no-op if the slot has been
    /// reclaimed from under the caller).
    pub fn bump_heartbeat(&self, id: ProcessId) {
        let s = slot(self, id.slot as usize);
        if s.pid.load(Ordering::Acquire) == id.pid {
            s.heartbeat.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n` to `id`'s submitted-task counter (no-op on a reclaimed
    /// slot).
    pub fn add_submitted(&self, id: ProcessId, n: u64) {
        let s = slot(self, id.slot as usize);
        if s.pid.load(Ordering::Acquire) == id.pid {
            s.submitted.fetch_add(n, Ordering::Release);
        }
    }

    /// Adds `n` to `id`'s completed-task counter (no-op on a reclaimed
    /// slot). The Release pairs with a waiting guest's Acquire read in
    /// [`ShmSegment::slot_view`], so a guest that observes
    /// `completed == submitted` also observes its tasks' side effects.
    pub fn add_completed(&self, id: ProcessId, n: u64) {
        let s = slot(self, id.slot as usize);
        if s.pid.load(Ordering::Acquire) == id.pid {
            s.completed.fetch_add(n, Ordering::Release);
        }
    }

    /// Number of processes currently attached (racy snapshot).
    pub fn attached_count(&self) -> usize {
        (0..MAX_PROCS)
            .filter(|&i| slot(self, i).state.load(Ordering::Relaxed) == SLOT_CLAIMED)
            .count()
    }

    /// Pids of all attached processes (racy snapshot, ascending slot order).
    pub fn attached_pids(&self) -> Vec<u64> {
        (0..MAX_PROCS)
            .filter_map(|i| {
                let s = slot(self, i);
                if s.state.load(Ordering::Relaxed) == SLOT_CLAIMED {
                    Some(s.pid.load(Ordering::Relaxed))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentConfig;

    fn seg() -> ShmSegment {
        ShmSegment::create(SegmentConfig {
            size: 4 * 1024 * 1024,
            max_cpus: 2,
        })
    }

    #[test]
    fn attach_detach_lifecycle() {
        let s = seg();
        assert_eq!(s.attached_count(), 0);
        let a = s.attach().unwrap();
        let b = s.attach().unwrap();
        assert_ne!(a.pid, b.pid);
        assert_eq!(s.attached_count(), 2);
        assert_eq!(s.detach(a), 1);
        assert_eq!(s.detach(b), 0, "last detacher sees zero remaining");
    }

    #[test]
    fn pids_visible_to_other_mappings() {
        let s = seg();
        let s2 = s.clone();
        let a = s.attach().unwrap();
        assert_eq!(s2.attached_pids(), vec![a.pid]);
        s2.detach(a);
        assert!(s.attached_pids().is_empty());
    }

    #[test]
    fn registry_fills_up() {
        let s = seg();
        let ids: Vec<_> = (0..MAX_PROCS).map(|_| s.attach().unwrap()).collect();
        assert_eq!(s.attach().unwrap_err(), AttachError::Full);
        for id in ids {
            s.detach(id);
        }
        assert!(s.attach().is_ok());
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn double_detach_panics() {
        let s = seg();
        let a = s.attach().unwrap();
        s.detach(a);
        s.detach(a);
    }

    #[test]
    fn guest_attach_record_and_join_lifecycle() {
        let s = seg();
        let g = s.attach_guest().unwrap();
        let view = s.slot_view(g.slot).unwrap();
        assert_eq!(view.pid, g.pid);
        assert_eq!(view.os_pid, std::process::id() as u64);
        assert_eq!(view.join_state, JoinState::Requested);
        assert_eq!(view.heartbeat, 1);
        assert_eq!((view.submitted, view.completed), (0, 0));
        // Handshake: host acknowledges, guest progresses, host completes.
        assert!(s.set_join_state(g, JoinState::Requested, JoinState::Active));
        assert!(!s.set_join_state(g, JoinState::Requested, JoinState::Active));
        s.bump_heartbeat(g);
        s.add_submitted(g, 3);
        s.add_completed(g, 2);
        let view = s.slot_view(g.slot).unwrap();
        assert_eq!(view.heartbeat, 2);
        assert_eq!((view.submitted, view.completed), (3, 2));
        assert_eq!(s.join_state(g), Some(JoinState::Active));
        // Detach zeroes the whole record.
        s.detach(g);
        assert_eq!(s.slot_view(g.slot), None);
        assert_eq!(s.join_state(g), None);
        assert!(!s.set_join_state(g, JoinState::Active, JoinState::Dead));
        // Stale-id mutators are no-ops, not corruption.
        s.bump_heartbeat(g);
        s.add_submitted(g, 1);
        let h = s.attach().unwrap();
        assert_eq!(s.slot_view(h.slot).unwrap().submitted, 0);
        s.detach(h);
    }

    /// Satellite: the attach/detach life cycle — including last-exit
    /// teardown and re-attach after detach — over a *named* OS-shared
    /// backing, where a second mapping is a genuinely distinct address
    /// range rather than a cloned handle.
    #[test]
    fn named_backing_last_exit_teardown_and_reattach() {
        if !crate::os_backing_available() {
            eprintln!("skipping: no OS backing available");
            return;
        }
        let name = format!("reg-test-{}", std::process::id());
        let cfg = SegmentConfig {
            size: 4 * 1024 * 1024,
            max_cpus: 2,
        };
        let owner = ShmSegment::create_named(&name, cfg, 0).unwrap();
        let peer = ShmSegment::attach_named(&name).unwrap();
        let a = owner.attach().unwrap();
        let b = peer.attach_guest().unwrap();
        assert_ne!(a.pid, b.pid);
        // Both mappings agree on the registry contents.
        assert_eq!(owner.attached_pids(), peer.attached_pids());
        assert_eq!(
            owner.slot_view(b.slot).unwrap().join_state,
            JoinState::Requested
        );
        // Detach through the *other* mapping than the one that attached.
        assert_eq!(peer.detach(a), 1);
        assert_eq!(owner.detach(b), 0, "last detacher sees zero remaining");
        // Re-attach after detach over the same named backing: slots are
        // reusable and pids never repeat.
        let c = peer.attach().unwrap();
        assert_ne!(c.pid, a.pid);
        assert_ne!(c.pid, b.pid);
        assert_eq!(owner.attached_count(), 1);
        assert_eq!(peer.detach(c), 0);
        // Last mapping out tears the name down (owner drop unpublishes).
        drop(peer);
        drop(owner);
        assert!(ShmSegment::attach_named(&name).is_err());
    }

    /// Crash-point fixture: covers `registry.claim.won` and
    /// `registry.record.published` — an attacher dying between the claim
    /// CAS and the pid publish leaves a half-open slot that only
    /// `reclaim_half_open` can free.
    #[test]
    fn half_open_slot_repair() {
        let s = seg();
        // Emulate a death at registry.claim.won: state claimed, record
        // untouched (pid == 0, os_pid == 0).
        let dead = slot(&s, 0);
        dead.state
            .compare_exchange(SLOT_FREE, SLOT_CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
            .unwrap();
        // The half-open slot is invisible to attach (claimed) yet counted.
        assert_eq!(s.attached_count(), 1);
        let live = s.attach().unwrap();
        assert_ne!(live.slot, 0, "attach must skip the half-open slot");
        // Repair refuses live slots and out-of-range indices…
        assert!(!s.reclaim_half_open(live.slot));
        assert!(!s.reclaim_half_open(MAX_PROCS as u32));
        assert!(!s.reclaim_half_open(5), "free slot is not half-open");
        // …frees the half-open one…
        assert!(s.reclaim_half_open(0));
        assert!(!s.reclaim_half_open(0), "already freed");
        assert_eq!(s.attached_count(), 1);
        // …and the slot is fully reusable afterwards.
        let reused = s.attach_guest().unwrap();
        assert_eq!(reused.slot, 0);
        assert_eq!(
            s.slot_view(0).unwrap().join_state,
            JoinState::Requested,
            "reused slot carries a fresh record"
        );
        // Emulate the later window (registry.record.published): os_pid
        // stored, join state possibly Requested, pid still unpublished.
        s.detach(reused);
        let dead = slot(&s, 0);
        dead.state
            .compare_exchange(SLOT_FREE, SLOT_CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
            .unwrap();
        dead.os_pid.store(999_999, Ordering::Relaxed);
        dead.join_state
            .store(JoinState::Requested as u32, Ordering::Release);
        assert!(s.reclaim_half_open(0));
        assert_eq!(s.slot_view(0), None);
        s.detach(live);
        assert_eq!(s.attached_count(), 0);
    }

    #[test]
    fn concurrent_attach_yields_unique_slots() {
        use std::thread;
        let s = seg();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                thread::spawn(move || s.attach().unwrap())
            })
            .collect();
        let ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut slots: Vec<_> = ids.iter().map(|i| i.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 8, "slots must be unique");
        for id in ids {
            s.detach(id);
        }
    }
}
