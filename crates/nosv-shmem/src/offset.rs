//! Position-independent typed offsets into a shared segment.

use nosv_sync::hint::{AtomicU64, Ordering};
use std::fmt;
use std::marker::PhantomData;

/// A typed byte offset from the base of a shared segment.
///
/// This is the shared-memory analogue of `*mut T`: because the segment may
/// be mapped at a different virtual address in every attached process,
/// pointers stored *inside* the segment must be base-relative. Offset `0`
/// is reserved as the null value (the segment header lives there, so no
/// allocation can ever produce it).
///
/// `Shoff` is `Copy` and 8 bytes regardless of `T`; resolving it to a real
/// pointer requires the segment (see `ShmSegment::resolve`), which is the
/// only place the base address is known.
#[repr(transparent)]
pub struct Shoff<T> {
    raw: u64,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T> Shoff<T> {
    /// The null offset.
    pub const NULL: Shoff<T> = Shoff {
        raw: 0,
        _marker: PhantomData,
    };

    /// Creates an offset from a raw byte distance.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Shoff {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw byte distance from the segment base.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.raw
    }

    /// Whether this is the null offset.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.raw == 0
    }

    /// Reinterprets the pointee type without changing the offset.
    #[inline]
    pub const fn cast<U>(self) -> Shoff<U> {
        Shoff::from_raw(self.raw)
    }

    /// Offset displaced by `bytes` (not scaled by `size_of::<T>()`, because
    /// shared structures mix headers and payloads at byte granularity).
    #[inline]
    pub const fn byte_add(self, bytes: u64) -> Shoff<T> {
        Shoff::from_raw(self.raw + bytes)
    }
}

impl<T> Clone for Shoff<T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shoff<T> {}

impl<T> PartialEq for Shoff<T> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Shoff<T> {}

impl<T> std::hash::Hash for Shoff<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T> fmt::Debug for Shoff<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Shoff<{}>(null)", std::any::type_name::<T>())
        } else {
            write!(f, "Shoff<{}>({:#x})", std::any::type_name::<T>(), self.raw)
        }
    }
}

impl<T> Default for Shoff<T> {
    fn default() -> Self {
        Self::NULL
    }
}

/// An atomic [`Shoff<T>`], for offset-linked structures mutated concurrently
/// from several attached processes (free lists, ready queues).
#[repr(transparent)]
pub struct AtomicShoff<T> {
    raw: AtomicU64,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T> AtomicShoff<T> {
    /// Creates an atomic offset initialized to `value`.
    pub const fn new(value: Shoff<T>) -> Self {
        AtomicShoff {
            raw: AtomicU64::new(value.raw),
            _marker: PhantomData,
        }
    }

    /// Atomically loads the offset.
    #[inline]
    pub fn load(&self, order: Ordering) -> Shoff<T> {
        Shoff::from_raw(self.raw.load(order))
    }

    /// Atomically stores the offset.
    #[inline]
    pub fn store(&self, value: Shoff<T>, order: Ordering) {
        self.raw.store(value.raw, order);
    }

    /// Atomically swaps the offset.
    #[inline]
    pub fn swap(&self, value: Shoff<T>, order: Ordering) -> Shoff<T> {
        Shoff::from_raw(self.raw.swap(value.raw, order))
    }

    /// Atomic compare-exchange on the offset.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Shoff<T>,
        new: Shoff<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shoff<T>, Shoff<T>> {
        self.raw
            .compare_exchange(current.raw, new.raw, success, failure)
            .map(Shoff::from_raw)
            .map_err(Shoff::from_raw)
    }
}

impl<T> Default for AtomicShoff<T> {
    fn default() -> Self {
        Self::new(Shoff::NULL)
    }
}

impl<T> fmt::Debug for AtomicShoff<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.load(Ordering::Relaxed).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_and_raw_roundtrip() {
        let n = Shoff::<u32>::NULL;
        assert!(n.is_null());
        assert_eq!(n.raw(), 0);
        let o = Shoff::<u32>::from_raw(4096);
        assert!(!o.is_null());
        assert_eq!(o.raw(), 4096);
        assert_eq!(o, o.cast::<u8>().cast::<u32>());
    }

    #[test]
    fn byte_add_displaces() {
        let o = Shoff::<u8>::from_raw(100);
        assert_eq!(o.byte_add(28).raw(), 128);
    }

    #[test]
    fn shoff_is_always_eight_bytes_and_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        // Even for a !Send pointee, the offset itself is freely shareable:
        // it is just a number until resolved against a segment.
        assert_send_sync::<Shoff<*mut u8>>();
        assert_eq!(std::mem::size_of::<Shoff<[u8; 123]>>(), 8);
        assert_eq!(std::mem::size_of::<AtomicShoff<[u8; 123]>>(), 8);
    }

    #[test]
    fn atomic_ops() {
        let a = AtomicShoff::<u64>::default();
        assert!(a.load(Ordering::Relaxed).is_null());
        a.store(Shoff::from_raw(64), Ordering::Relaxed);
        assert_eq!(a.swap(Shoff::from_raw(128), Ordering::Relaxed).raw(), 64);
        assert!(a
            .compare_exchange(
                Shoff::from_raw(128),
                Shoff::from_raw(256),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok());
        assert_eq!(a.load(Ordering::Relaxed).raw(), 256);
    }

    #[test]
    fn debug_formats_null_specially() {
        let n = format!("{:?}", Shoff::<u32>::NULL);
        assert!(n.contains("null"));
        let o = format!("{:?}", Shoff::<u32>::from_raw(0x40));
        assert!(o.contains("0x40"));
    }
}
