//! SLAB allocator with per-CPU magazine caches (paper §3.5).
//!
//! The data region of the segment is split into [`CHUNK_SIZE`] chunks. A
//! chunk is either FREE, a SLAB serving one power-of-two size class (carved
//! into an intra-chunk free list of equal objects), or part of a contiguous
//! LARGE run for allocations bigger than the largest class.
//!
//! The fast path is a per-(CPU, class) *magazine*: a small LIFO stack of
//! object offsets. Misses refill the magazine in a batch from the global
//! chunk table (one lock acquisition amortized over many objects); frees go
//! back into the magazine and overflow flushes half of it back to the owning
//! chunks. All metadata — chunk headers, partial lists, magazines — lives in
//! the segment itself and is offset-linked, which is what makes the paper's
//! key property work: *a pointer allocated by one process can be freed by
//! any other process* (§3.5).

use nosv_sync::hint::{AtomicU32, AtomicU64, Ordering};

use nosv_sync::RawSpinMutex;

use crate::layout::{
    class_for, CHUNK_HDR_BYTES, CHUNK_SIZE, MAG_CAP, NUM_CLASSES, SIZE_CLASSES, SLAB_GLOBAL_BYTES,
};
use crate::offset::Shoff;
use crate::segment::ShmSegment;

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The segment has no free chunk (or no contiguous run) left.
    OutOfMemory,
    /// The request exceeds what the segment could ever satisfy.
    TooLarge,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "shared segment exhausted"),
            AllocError::TooLarge => write!(f, "request larger than the segment"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Snapshot of allocator counters (diagnostics, tests, benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (rounded up to class / chunk granularity).
    pub allocated_bytes: u64,
    /// Total successful allocations since creation.
    pub total_allocs: u64,
    /// Total frees since creation.
    pub total_frees: u64,
    /// Magazine refills from the global table (slow-path entries).
    pub refills: u64,
    /// Magazine flushes back to the global table.
    pub flushes: u64,
    /// Chunks currently FREE.
    pub free_chunks: u32,
    /// Total data chunks in the segment.
    pub n_chunks: u32,
}

// Chunk states.
const CH_FREE: u32 = 0;
const CH_SLAB: u32 = 1;
const CH_LARGE_HEAD: u32 = 2;
const CH_LARGE_CONT: u32 = 3;

/// Global allocator state (one per segment, inside the segment).
#[repr(C)]
struct SlabGlobal {
    lock: RawSpinMutex,
    _pad: u32,
    free_chunks: AtomicU32,
    _pad2: u32,
    /// Head of the partial-chunk list per class, as chunk index + 1 (0 = none).
    partial_head: [AtomicU32; NUM_CLASSES],
    allocated_bytes: AtomicU64,
    total_allocs: AtomicU64,
    total_frees: AtomicU64,
    refills: AtomicU64,
    flushes: AtomicU64,
}

/// Per-chunk descriptor (in the chunk-header table, not in the chunk).
#[repr(C)]
struct ChunkHdr {
    state: AtomicU32,
    class: AtomicU32,
    /// Objects currently on this chunk's free list.
    free_count: AtomicU32,
    /// Whether the chunk is linked in its class's partial list.
    in_partial: AtomicU32,
    /// Global offset of the first free object (0 = none).
    free_head: AtomicU64,
    /// Next chunk in the partial list, as index + 1 (0 = end).
    next: AtomicU32,
    /// Chunks in this LARGE run (head only).
    run_len: AtomicU32,
}

/// Per-(CPU, class) magazine.
#[repr(C)]
struct Magazine {
    lock: RawSpinMutex,
    len: AtomicU32,
    slots: [AtomicU64; MAG_CAP],
}

const _: () = {
    assert!(std::mem::size_of::<SlabGlobal>() <= SLAB_GLOBAL_BYTES);
    assert!(std::mem::size_of::<ChunkHdr>() <= CHUNK_HDR_BYTES);
    assert!(std::mem::size_of::<Magazine>() <= crate::layout::MAG_STRIDE);
};

/// How many objects a refill tries to fetch (one returned + rest cached).
const REFILL_BATCH: usize = MAG_CAP / 2;
/// How many objects an overflow flush returns to the chunks.
const FLUSH_BATCH: usize = MAG_CAP / 2;

pub(crate) fn init_slab(seg: &ShmSegment) {
    // The zeroed segment already encodes: all chunks FREE, empty partial
    // lists, empty magazines, unlocked mutexes. Only the free-chunk count
    // needs an explicit value.
    global(seg)
        .free_chunks
        .store(seg.geometry().n_chunks as u32, Ordering::Relaxed);
}

fn global(seg: &ShmSegment) -> &SlabGlobal {
    let off = Shoff::<SlabGlobal>::from_raw(seg.geometry().slab_global_off as u64);
    // SAFETY: region reserved by geometry; zero-init is a valid SlabGlobal.
    unsafe { seg.sref(off) }
}

fn chunk_hdr(seg: &ShmSegment, idx: usize) -> &ChunkHdr {
    let off = Shoff::<ChunkHdr>::from_raw(seg.geometry().chunk_hdr(idx) as u64);
    // SAFETY: as above.
    unsafe { seg.sref(off) }
}

fn magazine(seg: &ShmSegment, cpu: usize, class: usize) -> &Magazine {
    let off = Shoff::<Magazine>::from_raw(seg.geometry().magazine(cpu, class) as u64);
    // SAFETY: as above.
    unsafe { seg.sref(off) }
}

/// Reads the intra-object "next free" link stored in the first 8 bytes of a
/// free object.
fn read_link(seg: &ShmSegment, off: u64) -> u64 {
    // SAFETY: `off` designates a free object owned by the allocator; free
    // objects store their link in their first word.
    unsafe { *seg.resolve(Shoff::<u64>::from_raw(off)) }
}

fn write_link(seg: &ShmSegment, off: u64, link: u64) {
    // SAFETY: as above.
    unsafe { seg.resolve(Shoff::<u64>::from_raw(off)).write(link) };
}

impl ShmSegment {
    /// Allocates `size` bytes on behalf of `cpu` (per-CPU cache index).
    ///
    /// The returned offset is aligned to the size class (a power of two of
    /// at least 64). The memory content is unspecified (may be recycled).
    pub fn alloc(&self, size: usize, cpu: usize) -> Result<Shoff<u8>, AllocError> {
        let cpu = cpu % self.geometry().max_cpus;
        match class_for(size.max(1)) {
            Some(class) => self.alloc_class(class, cpu),
            None => self.alloc_large(size),
        }
    }

    /// Allocates and zeroes `size` bytes.
    pub fn alloc_zeroed(&self, size: usize, cpu: usize) -> Result<Shoff<u8>, AllocError> {
        let off = self.alloc(size, cpu)?;
        let rounded = class_for(size.max(1)).map_or(size, |c| SIZE_CLASSES[c]);
        // SAFETY: we own the freshly allocated object of at least `rounded`
        // bytes (class-rounded) or `size` (large).
        unsafe { std::ptr::write_bytes(self.resolve(off), 0, rounded) };
        Ok(off)
    }

    /// Allocates a `T`-sized object and returns a typed offset.
    ///
    /// The object is *not* initialized; callers must `write` before reading.
    pub fn alloc_t<T>(&self, cpu: usize) -> Result<Shoff<T>, AllocError> {
        assert!(
            std::mem::align_of::<T>() <= CHUNK_SIZE,
            "alignment beyond chunk size is unsupported"
        );
        Ok(self.alloc(std::mem::size_of::<T>(), cpu)?.cast())
    }

    /// Frees an offset previously returned by [`ShmSegment::alloc`].
    ///
    /// May be called from any handle ("process") and any `cpu`, regardless
    /// of which process or CPU allocated it — the paper's cross-process
    /// free property.
    ///
    /// # Panics
    ///
    /// Panics on invalid frees: offsets outside the data region, offsets
    /// not at an object boundary, or double frees of a whole chunk state.
    pub fn free(&self, off: Shoff<u8>, cpu: usize) {
        let cpu = cpu % self.geometry().max_cpus;
        let idx = self.geometry().chunk_of(off.raw() as usize);
        let hdr = chunk_hdr(self, idx);
        match hdr.state.load(Ordering::Acquire) {
            CH_SLAB => self.free_class(off, idx, cpu),
            CH_LARGE_HEAD => self.free_large(off, idx),
            s => panic!("invalid free of {:#x}: chunk state {s}", off.raw()),
        }
    }

    /// Frees a typed offset.
    pub fn free_t<T>(&self, off: Shoff<T>, cpu: usize) {
        self.free(off.cast(), cpu);
    }

    /// Snapshot of the allocator counters.
    pub fn alloc_stats(&self) -> AllocStats {
        let g = global(self);
        AllocStats {
            allocated_bytes: g.allocated_bytes.load(Ordering::Relaxed),
            total_allocs: g.total_allocs.load(Ordering::Relaxed),
            total_frees: g.total_frees.load(Ordering::Relaxed),
            refills: g.refills.load(Ordering::Relaxed),
            flushes: g.flushes.load(Ordering::Relaxed),
            free_chunks: g.free_chunks.load(Ordering::Relaxed),
            n_chunks: self.geometry().n_chunks as u32,
        }
    }

    // ---- class (slab) path -------------------------------------------------

    fn alloc_class(&self, class: usize, cpu: usize) -> Result<Shoff<u8>, AllocError> {
        let g = global(self);
        let mag = magazine(self, cpu, class);
        mag.lock.lock();
        let len = mag.len.load(Ordering::Relaxed);
        if len > 0 {
            let off = mag.slots[(len - 1) as usize].load(Ordering::Relaxed);
            mag.len.store(len - 1, Ordering::Relaxed);
            mag.lock.unlock();
            g.total_allocs.fetch_add(1, Ordering::Relaxed);
            g.allocated_bytes
                .fetch_add(SIZE_CLASSES[class] as u64, Ordering::Relaxed);
            return Ok(Shoff::from_raw(off));
        }
        // Miss: refill a batch from the global table while holding the
        // magazine lock (lock order is always magazine -> global).
        let mut batch = [0u64; REFILL_BATCH];
        let got = self.refill_from_chunks(class, &mut batch);
        if got == 0 {
            mag.lock.unlock();
            return Err(AllocError::OutOfMemory);
        }
        g.refills.fetch_add(1, Ordering::Relaxed);
        for (i, &o) in batch[..got - 1].iter().enumerate() {
            mag.slots[i].store(o, Ordering::Relaxed);
        }
        mag.len.store((got - 1) as u32, Ordering::Relaxed);
        mag.lock.unlock();
        g.total_allocs.fetch_add(1, Ordering::Relaxed);
        g.allocated_bytes
            .fetch_add(SIZE_CLASSES[class] as u64, Ordering::Relaxed);
        Ok(Shoff::from_raw(batch[got - 1]))
    }

    /// Pops up to `out.len()` objects of `class` from partial chunks,
    /// initializing fresh slab chunks as needed. Returns how many were
    /// obtained. Takes the global lock.
    fn refill_from_chunks(&self, class: usize, out: &mut [u64]) -> usize {
        let g = global(self);
        let csize = SIZE_CLASSES[class];
        let objs_per_chunk = CHUNK_SIZE / csize;
        let mut got = 0;
        g.lock.lock();
        while got < out.len() {
            let head = g.partial_head[class].load(Ordering::Relaxed);
            let idx = if head != 0 {
                (head - 1) as usize
            } else {
                match self.take_free_chunk_locked() {
                    Some(idx) => {
                        self.carve_slab_chunk(idx, class, csize, objs_per_chunk);
                        let hdr = chunk_hdr(self, idx);
                        hdr.next.store(0, Ordering::Relaxed);
                        hdr.in_partial.store(1, Ordering::Relaxed);
                        g.partial_head[class].store(idx as u32 + 1, Ordering::Relaxed);
                        idx
                    }
                    None => break,
                }
            };
            let hdr = chunk_hdr(self, idx);
            while got < out.len() {
                let fc = hdr.free_count.load(Ordering::Relaxed);
                if fc == 0 {
                    break;
                }
                let off = hdr.free_head.load(Ordering::Relaxed);
                debug_assert_ne!(off, 0);
                hdr.free_head.store(read_link(self, off), Ordering::Relaxed);
                hdr.free_count.store(fc - 1, Ordering::Relaxed);
                out[got] = off;
                got += 1;
            }
            if hdr.free_count.load(Ordering::Relaxed) == 0 {
                // Exhausted: unlink from the partial list head.
                g.partial_head[class].store(hdr.next.load(Ordering::Relaxed), Ordering::Relaxed);
                hdr.next.store(0, Ordering::Relaxed);
                hdr.in_partial.store(0, Ordering::Relaxed);
            }
        }
        g.lock.unlock();
        got
    }

    /// Finds and claims a FREE chunk. Caller holds the global lock.
    fn take_free_chunk_locked(&self) -> Option<usize> {
        let g = global(self);
        if g.free_chunks.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let n = self.geometry().n_chunks;
        for idx in 0..n {
            let hdr = chunk_hdr(self, idx);
            if hdr.state.load(Ordering::Relaxed) == CH_FREE {
                g.free_chunks.fetch_sub(1, Ordering::Relaxed);
                return Some(idx);
            }
        }
        None
    }

    /// Initializes chunk `idx` as a slab of `class`, linking all objects
    /// into its free list. Caller holds the global lock.
    fn carve_slab_chunk(&self, idx: usize, class: usize, csize: usize, objs: usize) {
        let base = self.geometry().chunk_data(idx) as u64;
        for i in 0..objs {
            let obj = base + (i * csize) as u64;
            let link = if i + 1 < objs {
                base + ((i + 1) * csize) as u64
            } else {
                0
            };
            write_link(self, obj, link);
        }
        let hdr = chunk_hdr(self, idx);
        hdr.class.store(class as u32, Ordering::Relaxed);
        hdr.free_count.store(objs as u32, Ordering::Relaxed);
        hdr.free_head.store(base, Ordering::Relaxed);
        hdr.run_len.store(0, Ordering::Relaxed);
        hdr.state.store(CH_SLAB, Ordering::Release);
    }

    fn free_class(&self, off: Shoff<u8>, idx: usize, cpu: usize) {
        let g = global(self);
        let hdr = chunk_hdr(self, idx);
        let class = hdr.class.load(Ordering::Relaxed) as usize;
        let csize = SIZE_CLASSES[class];
        let chunk_base = self.geometry().chunk_data(idx) as u64;
        assert_eq!(
            (off.raw() - chunk_base) % csize as u64,
            0,
            "free of {:#x} not at an object boundary (class {csize})",
            off.raw()
        );
        let mag = magazine(self, cpu, class);
        mag.lock.lock();
        let len = mag.len.load(Ordering::Relaxed);
        if (len as usize) == MAG_CAP {
            // Overflow: flush the top half back to the owning chunks.
            let mut batch = [0u64; FLUSH_BATCH];
            for (i, slot) in batch.iter_mut().enumerate() {
                *slot = mag.slots[MAG_CAP - FLUSH_BATCH + i].load(Ordering::Relaxed);
            }
            mag.len
                .store((MAG_CAP - FLUSH_BATCH) as u32, Ordering::Relaxed);
            self.flush_to_chunks(&batch);
            g.flushes.fetch_add(1, Ordering::Relaxed);
        }
        let len = mag.len.load(Ordering::Relaxed);
        mag.slots[len as usize].store(off.raw(), Ordering::Relaxed);
        mag.len.store(len + 1, Ordering::Relaxed);
        mag.lock.unlock();
        g.total_frees.fetch_add(1, Ordering::Relaxed);
        g.allocated_bytes.fetch_sub(csize as u64, Ordering::Relaxed);
    }

    /// Returns a batch of object offsets to their owning chunks' free
    /// lists, handling full->partial and partial->FREE transitions. Takes
    /// the global lock.
    fn flush_to_chunks(&self, batch: &[u64]) {
        let g = global(self);
        g.lock.lock();
        for &off in batch {
            let idx = self.geometry().chunk_of(off as usize);
            let hdr = chunk_hdr(self, idx);
            debug_assert_eq!(hdr.state.load(Ordering::Relaxed), CH_SLAB);
            let class = hdr.class.load(Ordering::Relaxed) as usize;
            write_link(self, off, hdr.free_head.load(Ordering::Relaxed));
            hdr.free_head.store(off, Ordering::Relaxed);
            let fc = hdr.free_count.load(Ordering::Relaxed) + 1;
            hdr.free_count.store(fc, Ordering::Relaxed);
            if hdr.in_partial.load(Ordering::Relaxed) == 0 {
                hdr.next.store(
                    g.partial_head[class].load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                hdr.in_partial.store(1, Ordering::Relaxed);
                g.partial_head[class].store(idx as u32 + 1, Ordering::Relaxed);
            }
            let objs = (CHUNK_SIZE / SIZE_CLASSES[class]) as u32;
            if fc == objs {
                // Fully free: unlink and return the chunk to the free pool.
                self.unlink_partial_locked(class, idx);
                hdr.state.store(CH_FREE, Ordering::Relaxed);
                hdr.free_head.store(0, Ordering::Relaxed);
                hdr.free_count.store(0, Ordering::Relaxed);
                g.free_chunks.fetch_add(1, Ordering::Relaxed);
            }
        }
        g.lock.unlock();
    }

    /// Unlinks chunk `idx` from the `class` partial list. Caller holds the
    /// global lock and guarantees the chunk is linked.
    fn unlink_partial_locked(&self, class: usize, idx: usize) {
        let g = global(self);
        let target = idx as u32 + 1;
        let mut cur = g.partial_head[class].load(Ordering::Relaxed);
        if cur == target {
            let next = chunk_hdr(self, idx).next.load(Ordering::Relaxed);
            g.partial_head[class].store(next, Ordering::Relaxed);
        } else {
            while cur != 0 {
                let cur_hdr = chunk_hdr(self, (cur - 1) as usize);
                let next = cur_hdr.next.load(Ordering::Relaxed);
                if next == target {
                    let after = chunk_hdr(self, idx).next.load(Ordering::Relaxed);
                    cur_hdr.next.store(after, Ordering::Relaxed);
                    break;
                }
                cur = next;
            }
        }
        let hdr = chunk_hdr(self, idx);
        hdr.next.store(0, Ordering::Relaxed);
        hdr.in_partial.store(0, Ordering::Relaxed);
    }

    /// Flushes every magazine of `cpu` back to the chunk table.
    ///
    /// Used on process detach (a departing process must not strand objects
    /// in its CPU caches) and by tests that assert full reclamation.
    pub fn drain_cpu_caches(&self, cpu: usize) {
        let cpu = cpu % self.geometry().max_cpus;
        for class in 0..NUM_CLASSES {
            let mag = magazine(self, cpu, class);
            mag.lock.lock();
            let len = mag.len.load(Ordering::Relaxed) as usize;
            if len > 0 {
                let mut batch = [0u64; MAG_CAP];
                for (i, slot) in batch[..len].iter_mut().enumerate() {
                    *slot = mag.slots[i].load(Ordering::Relaxed);
                }
                mag.len.store(0, Ordering::Relaxed);
                self.flush_to_chunks(&batch[..len]);
                global(self).flushes.fetch_add(1, Ordering::Relaxed);
            }
            mag.lock.unlock();
        }
    }

    // ---- large path --------------------------------------------------------

    fn alloc_large(&self, size: usize) -> Result<Shoff<u8>, AllocError> {
        let n = size.div_ceil(CHUNK_SIZE);
        let g = global(self);
        if n > self.geometry().n_chunks {
            return Err(AllocError::TooLarge);
        }
        g.lock.lock();
        // First-fit scan for `n` consecutive FREE chunks.
        let total = self.geometry().n_chunks;
        let mut run_start = 0;
        let mut run_len = 0;
        let mut found = None;
        for idx in 0..total {
            if chunk_hdr(self, idx).state.load(Ordering::Relaxed) == CH_FREE {
                if run_len == 0 {
                    run_start = idx;
                }
                run_len += 1;
                if run_len == n {
                    found = Some(run_start);
                    break;
                }
            } else {
                run_len = 0;
            }
        }
        let Some(start) = found else {
            g.lock.unlock();
            return Err(AllocError::OutOfMemory);
        };
        for i in 0..n {
            let hdr = chunk_hdr(self, start + i);
            hdr.state.store(
                if i == 0 { CH_LARGE_HEAD } else { CH_LARGE_CONT },
                Ordering::Relaxed,
            );
            hdr.run_len
                .store(if i == 0 { n as u32 } else { 0 }, Ordering::Relaxed);
        }
        g.free_chunks.fetch_sub(n as u32, Ordering::Relaxed);
        g.lock.unlock();
        g.total_allocs.fetch_add(1, Ordering::Relaxed);
        g.allocated_bytes
            .fetch_add((n * CHUNK_SIZE) as u64, Ordering::Relaxed);
        Ok(Shoff::from_raw(self.geometry().chunk_data(start) as u64))
    }

    fn free_large(&self, off: Shoff<u8>, idx: usize) {
        let g = global(self);
        assert_eq!(
            off.raw() as usize,
            self.geometry().chunk_data(idx),
            "large free must pass the run's base offset"
        );
        g.lock.lock();
        let hdr = chunk_hdr(self, idx);
        let n = hdr.run_len.load(Ordering::Relaxed) as usize;
        debug_assert!(n >= 1);
        for i in 0..n {
            let h = chunk_hdr(self, idx + i);
            h.state.store(CH_FREE, Ordering::Relaxed);
            h.run_len.store(0, Ordering::Relaxed);
        }
        g.free_chunks.fetch_add(n as u32, Ordering::Relaxed);
        g.lock.unlock();
        g.total_frees.fetch_add(1, Ordering::Relaxed);
        g.allocated_bytes
            .fetch_sub((n * CHUNK_SIZE) as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentConfig;

    fn seg() -> ShmSegment {
        ShmSegment::create(SegmentConfig {
            size: 8 * 1024 * 1024,
            max_cpus: 4,
        })
    }

    #[test]
    fn alloc_free_roundtrip_reuses_memory() {
        let s = seg();
        let a = s.alloc(100, 0).unwrap();
        s.free(a, 0);
        let b = s.alloc(100, 0).unwrap();
        // LIFO magazine: the exact same object comes back.
        assert_eq!(a, b);
        s.free(b, 0);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let s = seg();
        let mut offs: Vec<(u64, usize)> = Vec::new();
        for (i, &size) in [1usize, 64, 65, 500, 4096, 32768, 100, 100]
            .iter()
            .enumerate()
        {
            let off = s.alloc(size, i % 4).unwrap();
            let rounded = SIZE_CLASSES[class_for(size).unwrap()];
            for &(o, r) in &offs {
                let disjoint = off.raw() + rounded as u64 <= o || o + r as u64 <= off.raw();
                assert!(
                    disjoint,
                    "{:#x}+{} overlaps {:#x}+{}",
                    off.raw(),
                    rounded,
                    o,
                    r
                );
            }
            offs.push((off.raw(), rounded));
        }
    }

    #[test]
    fn alignment_matches_class() {
        let s = seg();
        for &size in &[1usize, 64, 100, 1000, 5000, 32768] {
            let class = class_for(size).unwrap();
            let off = s.alloc(size, 0).unwrap();
            assert_eq!(
                off.raw() % SIZE_CLASSES[class] as u64,
                0,
                "size {size} not aligned to its class"
            );
        }
    }

    #[test]
    fn cross_process_cross_cpu_free() {
        let s = seg();
        let s2 = s.clone(); // second "process" mapping
        let a = s.alloc(128, 0).unwrap();
        s2.free(a, 3); // freed by the other process, different CPU cache
        let stats = s.alloc_stats();
        assert_eq!(stats.total_allocs, 1);
        assert_eq!(stats.total_frees, 1);
        assert_eq!(stats.allocated_bytes, 0);
    }

    #[test]
    fn magazine_overflow_flushes_and_chunks_are_reclaimed() {
        let s = seg();
        let before = s.alloc_stats().free_chunks;
        // Allocate enough objects to use several chunks, then free them all.
        let n = 3 * (CHUNK_SIZE / 1024);
        let offs: Vec<_> = (0..n).map(|_| s.alloc(1024, 0).unwrap()).collect();
        assert!(s.alloc_stats().free_chunks < before);
        for off in offs {
            s.free(off, 0);
        }
        let stats = s.alloc_stats();
        assert!(stats.flushes > 0, "overflow must have flushed");
        assert_eq!(stats.allocated_bytes, 0);
        // Objects parked in the magazine may pin a couple of chunks; after
        // draining the CPU cache every chunk must return to FREE.
        s.drain_cpu_caches(0);
        assert_eq!(
            s.alloc_stats().free_chunks,
            before,
            "all chunks reclaimed after drain"
        );
    }

    #[test]
    fn large_allocation_roundtrip() {
        let s = seg();
        let before = s.alloc_stats().free_chunks;
        let size = 3 * CHUNK_SIZE + 17;
        let off = s.alloc(size, 0).unwrap();
        assert_eq!(off.raw() as usize % CHUNK_SIZE, 0);
        assert_eq!(s.alloc_stats().free_chunks, before - 4);
        // SAFETY: the whole four-chunk run was just allocated for this
        // offset, so `size` bytes from `off` are in-bounds and writable.
        unsafe { std::ptr::write_bytes(s.resolve(off), 0xAB, size) };
        s.free(off, 0);
        assert_eq!(s.alloc_stats().free_chunks, before);
    }

    #[test]
    fn exhaustion_returns_oom_not_panic() {
        let s = ShmSegment::create(SegmentConfig {
            size: 2 * 1024 * 1024,
            max_cpus: 2,
        });
        let mut offs = Vec::new();
        loop {
            match s.alloc(32768, 0) {
                Ok(o) => offs.push(o),
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(!offs.is_empty());
        // Everything can be freed and then reallocated.
        let count = offs.len();
        for o in offs.drain(..) {
            s.free(o, 0);
        }
        for _ in 0..count {
            offs.push(s.alloc(32768, 0).unwrap());
        }
        for o in offs {
            s.free(o, 0);
        }
    }

    #[test]
    fn too_large_is_distinguished_from_oom() {
        let s = seg();
        let err = s.alloc(usize::MAX / 2, 0).unwrap_err();
        assert_eq!(err, AllocError::TooLarge);
    }

    #[test]
    fn alloc_zeroed_is_zeroed_even_after_recycling() {
        let s = seg();
        let a = s.alloc(256, 0).unwrap();
        // SAFETY: `a` was just allocated with 256 bytes, all in-bounds.
        unsafe { std::ptr::write_bytes(s.resolve(a), 0xFF, 256) };
        s.free(a, 0);
        let b = s.alloc_zeroed(256, 0).unwrap();
        assert_eq!(a, b, "expected LIFO reuse for this test to be meaningful");
        // SAFETY: `b` is a live 256-byte allocation; no writers alias it.
        let bytes = unsafe { std::slice::from_raw_parts(s.resolve(b), 256) };
        assert!(bytes.iter().all(|&x| x == 0));
    }

    #[test]
    fn typed_alloc() {
        #[repr(C)]
        struct Big {
            a: u64,
            b: [u8; 300],
        }
        let s = seg();
        let off = s.alloc_t::<Big>(1).unwrap();
        // SAFETY: `off` was just allocated sized and aligned for one `Big`.
        unsafe {
            s.resolve(off).write(Big { a: 7, b: [1; 300] });
            assert_eq!((*s.resolve(off)).a, 7);
        }
        s.free_t(off, 1);
    }

    #[test]
    #[should_panic(expected = "invalid free")]
    fn double_free_of_reclaimed_chunk_panics() {
        let s = seg();
        let off = s.alloc(CHUNK_SIZE * 2, 0).unwrap(); // large run
        s.free(off, 0);
        s.free(off, 0); // chunk now FREE: must panic
    }

    #[test]
    fn concurrent_alloc_free_across_threads() {
        use std::thread;
        let s = seg();
        let handles: Vec<_> = (0..4)
            .map(|cpu| {
                let s = s.clone();
                thread::spawn(move || {
                    let mut offs = Vec::new();
                    let iters = if cfg!(miri) { 150 } else { 2_000 };
                    for i in 0..iters {
                        if i % 3 != 2 {
                            offs.push(s.alloc(64 + (i % 5) * 100, cpu).unwrap());
                        } else if let Some(o) = offs.pop() {
                            s.free(o, cpu);
                        }
                    }
                    for o in offs {
                        s.free(o, cpu);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = s.alloc_stats();
        assert_eq!(stats.total_allocs, stats.total_frees);
        assert_eq!(stats.allocated_bytes, 0);
    }
}
