//! Bounded lock-free submission rings living in the shared segment.
//!
//! The paper's scheduler (§3.4) is fed through lock-free queues so that
//! task *submission* never contends with the delegation-lock critical
//! section: each process pushes into its own ring and the transient server
//! drains every ring in one batch while it already holds the lock. This
//! module provides that ring as a position-independent, fixed-layout
//! structure: a bounded multi-producer/single-consumer queue of `u64`
//! payloads (the runtime stores [`Shoff`]-encoded task descriptors).
//!
//! The algorithm is the classic sequence-numbered bounded queue (Vyukov's
//! MPMC ring, restricted here to one consumer): each slot carries a
//! sequence word that encodes whose turn it is.
//!
//! * slot `i` starts with `seq = i`;
//! * a producer that claims position `pos` (CAS on `tail`, only possible
//!   while `seq == pos`) writes the value and publishes `seq = pos + 1`;
//! * the consumer at position `pos` waits for `seq == pos + 1`, reads the
//!   value, and releases the slot for the next lap with
//!   `seq = pos + capacity`.
//!
//! Producers never wait for the consumer and never spin on a full ring:
//! [`SubmitRing::push`] fails fast so the caller can take its bounded
//! fallback path (the runtime falls back to a locked enqueue). Pops are
//! only ever issued by the scheduler-lock holder, which is what makes the
//! single-consumer restriction free.
//!
//! A zeroed `SubmitRing` is a valid *uninitialized* ring (capacity 0,
//! null buffer): pushes fail and pops return `None` until
//! [`SubmitRing::init`] allocates the slot array — exactly the
//! zero-validity contract every in-segment structure here follows.

use nosv_sync::hint::{AtomicU64, Ordering};

use crate::offset::{AtomicShoff, Shoff};
use crate::segment::ShmSegment;
use crate::slab::AllocError;

/// One ring slot: the turn word plus the payload.
#[repr(C)]
pub struct RingSlot {
    seq: AtomicU64,
    value: AtomicU64,
}

/// A bounded multi-producer/single-consumer ring of `u64` payloads in the
/// shared segment; see the module docs for the protocol.
///
/// `repr(C)`, offset-linked and zero-valid (zeroed = uninitialized, all
/// operations fail benignly). All methods take the segment explicitly
/// because the structure stores offsets, not pointers.
#[repr(C)]
pub struct SubmitRing {
    /// Consumer cursor (monotonic position, not an index).
    head: AtomicU64,
    /// Producer cursor (monotonic position, not an index).
    tail: AtomicU64,
    /// Number of slots (a power of two); `0` until initialized.
    cap: AtomicU64,
    /// The slot array, allocated by [`SubmitRing::init`].
    buf: AtomicShoff<RingSlot>,
}

impl SubmitRing {
    /// Allocates and publishes the slot array.
    ///
    /// Idempotent: a ring that is already initialized is left untouched
    /// (the existing capacity wins). `capacity` must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not a power of two.
    pub fn init(&self, seg: &ShmSegment, capacity: usize) -> Result<(), AllocError> {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity must be a power of two, got {capacity}"
        );
        if self.cap.load(Ordering::Acquire) != 0 {
            return Ok(());
        }
        let bytes = capacity * std::mem::size_of::<RingSlot>();
        let buf: Shoff<RingSlot> = seg.alloc_zeroed(bytes, 0)?.cast();
        for i in 0..capacity {
            // SAFETY: freshly allocated, exclusively ours until published.
            let slot = unsafe { seg.sref(Self::slot_off(buf, i as u64, capacity as u64 - 1)) };
            slot.seq.store(i as u64, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Relaxed);
        self.tail.store(0, Ordering::Relaxed);
        self.buf.store(buf, Ordering::Release);
        // Publishing a nonzero capacity is what makes the ring visible to
        // producers; the Release pairs with their Acquire load of `cap`.
        self.cap.store(capacity as u64, Ordering::Release);
        Ok(())
    }

    /// Whether [`SubmitRing::init`] has run.
    #[inline]
    pub fn is_init(&self) -> bool {
        self.cap.load(Ordering::Acquire) != 0
    }

    /// The slot count, `0` when uninitialized.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap.load(Ordering::Acquire) as usize
    }

    #[inline]
    fn slot_off(buf: Shoff<RingSlot>, pos: u64, mask: u64) -> Shoff<RingSlot> {
        buf.byte_add((pos & mask) * std::mem::size_of::<RingSlot>() as u64)
    }

    /// Pushes `value`; returns `false` when the ring is full or
    /// uninitialized (the caller takes its fallback path). Lock-free and
    /// multi-producer safe; never blocks on the consumer.
    pub fn push(&self, seg: &ShmSegment, value: u64) -> bool {
        let cap = self.cap.load(Ordering::Acquire);
        if cap == 0 {
            return false;
        }
        let mask = cap - 1;
        let buf = self.buf.load(Ordering::Acquire);
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            // SAFETY: `buf` is a live slot array of `cap` entries; the mask
            // keeps the index in range.
            let slot = unsafe { seg.sref(Self::slot_off(buf, pos, mask)) };
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&pos) {
                std::cmp::Ordering::Equal => {
                    // Our turn, if we can claim the position.
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            slot.value.store(value, Ordering::Relaxed);
                            slot.seq.store(pos + 1, Ordering::Release);
                            return true;
                        }
                        Err(current) => pos = current,
                    }
                }
                // The slot is still occupied by the entry one lap behind:
                // the ring is full (the consumer has not released it yet).
                std::cmp::Ordering::Less => return false,
                // A racing producer advanced past us; catch up.
                std::cmp::Ordering::Greater => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Pops the oldest value, or `None` when the ring is empty (or
    /// uninitialized).
    ///
    /// Single-consumer: callers must guarantee mutual exclusion among
    /// poppers (the runtime pops only while holding the scheduler lock).
    pub fn pop(&self, seg: &ShmSegment) -> Option<u64> {
        let cap = self.cap.load(Ordering::Acquire);
        if cap == 0 {
            return None;
        }
        let mask = cap - 1;
        let buf = self.buf.load(Ordering::Acquire);
        let pos = self.head.load(Ordering::Relaxed);
        // SAFETY: as in `push`.
        let slot = unsafe { seg.sref(Self::slot_off(buf, pos, mask)) };
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None; // empty, or the producer has not published yet
        }
        let value = slot.value.load(Ordering::Relaxed);
        // Release the slot for the producer one lap ahead.
        slot.seq.store(pos + cap, Ordering::Release);
        self.head.store(pos + 1, Ordering::Relaxed);
        Some(value)
    }

    /// Racy occupancy estimate (exact when quiescent).
    #[inline]
    pub fn len(&self) -> u64 {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the ring currently holds no entries (racy).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SubmitRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentConfig;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    fn seg() -> ShmSegment {
        ShmSegment::create(SegmentConfig {
            size: 4 * 1024 * 1024,
            max_cpus: 2,
        })
    }

    fn ring(seg: &ShmSegment, cap: usize) -> &SubmitRing {
        let off = seg
            .alloc_zeroed(std::mem::size_of::<SubmitRing>(), 0)
            .unwrap();
        // SAFETY: zeroed SubmitRing is a valid uninitialized ring.
        let r: &SubmitRing = unsafe { seg.sref(off.cast()) };
        if cap > 0 {
            r.init(seg, cap).unwrap();
        }
        r
    }

    #[test]
    fn uninitialized_ring_fails_benignly() {
        let s = seg();
        let r = ring(&s, 0);
        assert!(!r.is_init());
        assert!(!r.push(&s, 7));
        assert_eq!(r.pop(&s), None);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn fifo_roundtrip() {
        let s = seg();
        let r = ring(&s, 8);
        for v in 1..=5u64 {
            assert!(r.push(&s, v));
        }
        assert_eq!(r.len(), 5);
        for v in 1..=5u64 {
            assert_eq!(r.pop(&s), Some(v));
        }
        assert_eq!(r.pop(&s), None);
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_rejects_instead_of_blocking() {
        let s = seg();
        let r = ring(&s, 4);
        for v in 0..4u64 {
            assert!(r.push(&s, v));
        }
        assert!(!r.push(&s, 99), "full ring must fail fast");
        assert_eq!(r.pop(&s), Some(0));
        assert!(r.push(&s, 99), "one pop frees one slot");
    }

    #[test]
    fn wraps_across_many_laps() {
        let s = seg();
        let r = ring(&s, 2);
        for lap in 0..1000u64 {
            assert!(r.push(&s, lap * 2));
            assert!(r.push(&s, lap * 2 + 1));
            assert_eq!(r.pop(&s), Some(lap * 2));
            assert_eq!(r.pop(&s), Some(lap * 2 + 1));
        }
    }

    #[test]
    fn init_is_idempotent() {
        let s = seg();
        let r = ring(&s, 8);
        r.push(&s, 42);
        r.init(&s, 16).unwrap(); // must not clobber the live ring
        assert_eq!(r.capacity(), 8);
        assert_eq!(r.pop(&s), Some(42));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let s = seg();
        let _ = ring(&s, 6);
    }

    /// Many producers, one consumer, a tiny ring: every pushed value must
    /// come out exactly once, in a per-producer FIFO order.
    #[test]
    fn multi_producer_delivery_is_exactly_once_and_fifo_per_producer() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = if cfg!(miri) { 100 } else { 5_000 };
        let s = seg();
        let r = ring(&s, 8) as *const SubmitRing as usize;
        let seen = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let s = s.clone();
                thread::spawn(move || {
                    // SAFETY: the ring lives in the segment for the whole test.
                    let r = unsafe { &*(r as *const SubmitRing) };
                    for i in 0..PER_PRODUCER {
                        let v = p * PER_PRODUCER + i;
                        while !r.push(&s, v) {
                            thread::yield_now(); // full: consumer will drain
                        }
                    }
                })
            })
            .collect();

        let consumer = {
            let s = s.clone();
            let seen = Arc::clone(&seen);
            thread::spawn(move || {
                // SAFETY: as above.
                let r = unsafe { &*(r as *const SubmitRing) };
                let mut last = vec![None::<u64>; PRODUCERS as usize];
                let mut got = 0;
                while got < PRODUCERS * PER_PRODUCER {
                    match r.pop(&s) {
                        Some(v) => {
                            let p = (v / PER_PRODUCER) as usize;
                            let i = v % PER_PRODUCER;
                            if let Some(prev) = last[p] {
                                assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                            }
                            last[p] = Some(i);
                            seen[v as usize].fetch_add(1, Ordering::Relaxed);
                            got += 1;
                        }
                        None => thread::yield_now(),
                    }
                }
            })
        };

        for p in producers {
            p.join().unwrap();
        }
        consumer.join().unwrap();
        for (v, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "value {v} delivered wrong");
        }
    }
}
