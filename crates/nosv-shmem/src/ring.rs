//! Bounded lock-free submission rings living in the shared segment.
//!
//! The paper's scheduler (§3.4) is fed through lock-free queues so that
//! task *submission* never contends with the delegation-lock critical
//! section: each process pushes into its own ring and the transient server
//! drains every ring in one batch while it already holds the lock. This
//! module provides that ring as a position-independent, fixed-layout
//! structure: a bounded multi-producer/single-consumer queue of `u64`
//! payloads (the runtime stores [`Shoff`]-encoded task descriptors).
//!
//! The algorithm is the classic sequence-numbered bounded queue (Vyukov's
//! MPMC ring, restricted here to one consumer): each slot carries a
//! sequence word that encodes whose turn it is.
//!
//! * slot `i` starts with `seq = i`;
//! * a producer that claims position `pos` (CAS on `tail`, only possible
//!   while `seq == pos`) writes the value and publishes `seq = pos + 1`;
//! * the consumer at position `pos` waits for `seq == pos + 1`, reads the
//!   value, and releases the slot for the next lap with
//!   `seq = pos + capacity`.
//!
//! Producers never wait for the consumer and never spin on a full ring:
//! [`SubmitRing::push`] fails fast so the caller can take its bounded
//! fallback path (the runtime falls back to a locked enqueue). Pops are
//! only ever issued by the scheduler-lock holder, which is what makes the
//! single-consumer restriction free. Batch producers reserve N
//! consecutive positions with one CAS ([`SubmitRing::push_n`]), trading
//! the per-slot turn check for an Acquire read of the consumer cursor.
//!
//! [`LaneRing`] fans one process's submission channel out over a small
//! array of rings (*lanes*), one per producer thread (hashed when threads
//! exceed lanes), so concurrent producers stop contending on a single
//! tail word; a dirty-lane bitmap tells the consumer which lanes to
//! drain, mirroring the scheduler's per-process `ring_mask` discipline
//! one level down.
//!
//! A zeroed `SubmitRing` is a valid *uninitialized* ring (capacity 0,
//! null buffer): pushes fail and pops return `None` until
//! [`SubmitRing::init`] allocates the slot array — exactly the
//! zero-validity contract every in-segment structure here follows.

use nosv_sync::hint::{crash_point, AtomicU64, Ordering};

use crate::offset::{AtomicShoff, Shoff};
use crate::segment::ShmSegment;
use crate::slab::AllocError;

/// One ring slot: the turn word plus the payload.
#[repr(C)]
pub struct RingSlot {
    seq: AtomicU64,
    value: AtomicU64,
}

/// A bounded multi-producer/single-consumer ring of `u64` payloads in the
/// shared segment; see the module docs for the protocol.
///
/// `repr(C)`, offset-linked and zero-valid (zeroed = uninitialized, all
/// operations fail benignly). All methods take the segment explicitly
/// because the structure stores offsets, not pointers.
#[repr(C)]
pub struct SubmitRing {
    /// Consumer cursor (monotonic position, not an index).
    head: AtomicU64,
    /// Producer cursor (monotonic position, not an index).
    tail: AtomicU64,
    /// Number of slots (a power of two); `0` until initialized.
    cap: AtomicU64,
    /// The slot array, allocated by [`SubmitRing::init`].
    buf: AtomicShoff<RingSlot>,
}

impl SubmitRing {
    /// Allocates and publishes the slot array.
    ///
    /// Idempotent: a ring that is already initialized is left untouched
    /// (the existing capacity wins). `capacity` must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not a power of two.
    pub fn init(&self, seg: &ShmSegment, capacity: usize) -> Result<(), AllocError> {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity must be a power of two, got {capacity}"
        );
        if self.cap.load(Ordering::Acquire) != 0 {
            return Ok(());
        }
        let bytes = capacity * std::mem::size_of::<RingSlot>();
        let buf: Shoff<RingSlot> = seg.alloc_zeroed(bytes, 0)?.cast();
        for i in 0..capacity {
            // SAFETY: freshly allocated, exclusively ours until published.
            let slot = unsafe { seg.sref(Self::slot_off(buf, i as u64, capacity as u64 - 1)) };
            slot.seq.store(i as u64, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Relaxed);
        self.tail.store(0, Ordering::Relaxed);
        self.buf.store(buf, Ordering::Release);
        // Publishing a nonzero capacity is what makes the ring visible to
        // producers; the Release pairs with their Acquire load of `cap`.
        self.cap.store(capacity as u64, Ordering::Release);
        Ok(())
    }

    /// Whether [`SubmitRing::init`] has run.
    #[inline]
    pub fn is_init(&self) -> bool {
        self.cap.load(Ordering::Acquire) != 0
    }

    /// The slot count, `0` when uninitialized.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap.load(Ordering::Acquire) as usize
    }

    #[inline]
    fn slot_off(buf: Shoff<RingSlot>, pos: u64, mask: u64) -> Shoff<RingSlot> {
        buf.byte_add((pos & mask) * std::mem::size_of::<RingSlot>() as u64)
    }

    /// Pushes `value`; returns `false` when the ring is full or
    /// uninitialized (the caller takes its fallback path). Lock-free and
    /// multi-producer safe; never blocks on the consumer.
    pub fn push(&self, seg: &ShmSegment, value: u64) -> bool {
        let cap = self.cap.load(Ordering::Acquire);
        if cap == 0 {
            return false;
        }
        let mask = cap - 1;
        let buf = self.buf.load(Ordering::Acquire);
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            // SAFETY: `buf` is a live slot array of `cap` entries; the mask
            // keeps the index in range.
            let slot = unsafe { seg.sref(Self::slot_off(buf, pos, mask)) };
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&pos) {
                std::cmp::Ordering::Equal => {
                    // Our turn, if we can claim the position.
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // A producer dying here has claimed position
                            // `pos` forever but will never publish it: the
                            // consumer wedges at `seq == pos` until
                            // `repair_stranded` retires the reservation.
                            crash_point("ring.push.reserved");
                            slot.value.store(value, Ordering::Relaxed);
                            slot.seq.store(pos + 1, Ordering::Release);
                            return true;
                        }
                        Err(current) => pos = current,
                    }
                }
                // The slot is still occupied by the entry one lap behind:
                // the ring is full (the consumer has not released it yet).
                std::cmp::Ordering::Less => return false,
                // A racing producer advanced past us; catch up.
                std::cmp::Ordering::Greater => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Pops the oldest value, or `None` when the ring is empty (or
    /// uninitialized).
    ///
    /// Single-consumer: callers must guarantee mutual exclusion among
    /// poppers (the runtime pops only while holding the scheduler lock).
    pub fn pop(&self, seg: &ShmSegment) -> Option<u64> {
        let cap = self.cap.load(Ordering::Acquire);
        if cap == 0 {
            return None;
        }
        let mask = cap - 1;
        let buf = self.buf.load(Ordering::Acquire);
        let pos = self.head.load(Ordering::Relaxed);
        // SAFETY: as in `push`.
        let slot = unsafe { seg.sref(Self::slot_off(buf, pos, mask)) };
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None; // empty, or the producer has not published yet
        }
        let value = slot.value.load(Ordering::Relaxed);
        // Release the slot for the producer one lap ahead.
        slot.seq.store(pos + cap, Ordering::Release);
        // Release so a batch producer that observes the new head through
        // its Acquire load in `push_n` also observes every slot release
        // (`seq` store above) made before it — that is what lets `push_n`
        // treat `cap - (tail - head)` slots as free without touching each
        // slot's sequence word.
        self.head.store(pos + 1, Ordering::Release);
        Some(value)
    }

    /// Pushes a batch of values with **one** tail reservation: claims
    /// `min(values.len(), free)` consecutive positions in a single CAS and
    /// publishes them in order. Returns how many values were pushed (a
    /// prefix of `values`); `0` when the ring is full or uninitialized.
    ///
    /// Free-slot accounting: the producer reads `head` (Acquire) and
    /// treats `cap - (tail - head)` slots as claimable. The consumer
    /// stores `head` with Release *after* releasing the slot sequence
    /// words, so every slot inside the claimed window is guaranteed
    /// already released for this lap — no per-slot turn check is needed.
    /// Interoperates freely with concurrent [`SubmitRing::push`] callers
    /// (both claim positions through the same `tail` CAS).
    pub fn push_n(&self, seg: &ShmSegment, values: &[u64]) -> usize {
        if values.is_empty() {
            return 0;
        }
        let cap = self.cap.load(Ordering::Acquire);
        if cap == 0 {
            return 0;
        }
        let mask = cap - 1;
        let buf = self.buf.load(Ordering::Acquire);
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let head = self.head.load(Ordering::Acquire);
            if head > pos {
                // Stale tail snapshot: another producer advanced the tail
                // past our read and the consumer drained beyond it.
                pos = self.tail.load(Ordering::Relaxed);
                continue;
            }
            let free = cap - (pos - head);
            let k = (values.len() as u64).min(free);
            if k == 0 {
                return 0; // full (possibly conservatively: head may lag)
            }
            match self.tail.compare_exchange_weak(
                pos,
                pos + k,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // A producer dying between here and the last `seq`
                    // store below strands the unpublished suffix of its
                    // reservation (`NOSV_CRASH_POINT=ring.push_n.publish:2`
                    // dies after publishing exactly one slot).
                    crash_point("ring.push_n.reserved");
                    for (i, &v) in values[..k as usize].iter().enumerate() {
                        crash_point("ring.push_n.publish");
                        let off = Self::slot_off(buf, pos + i as u64, mask);
                        // SAFETY: `buf` is a live slot array of `cap`
                        // entries; the mask keeps the index in range, and
                        // positions `pos..pos+k` are exclusively ours.
                        let slot = unsafe { seg.sref(off) };
                        slot.value.store(v, Ordering::Relaxed);
                        slot.seq.store(pos + i as u64 + 1, Ordering::Release);
                    }
                    return k as usize;
                }
                Err(current) => pos = current,
            }
        }
    }

    /// Sweeps every claimed-but-undrained position of the ring, recovering
    /// published values and force-retiring reservations a **dead producer**
    /// claimed but never published — the sequence-number repair for the
    /// `ring.push.reserved` / `ring.push_n.reserved` crash windows, where a
    /// killed producer's unpublished slot (`seq == pos`) wedges `pop`
    /// forever and makes every later entry unreachable.
    ///
    /// Published values found behind the wedge are appended to `recovered`
    /// (the caller decides their fate — the runtime frees the descriptors
    /// like any other crash-reclaimed task); the return value is the number
    /// of stranded reservations retired. Afterwards the ring is empty and
    /// fully reusable.
    ///
    /// # Contract
    ///
    /// The caller must be the single consumer **and** must guarantee no
    /// producer is alive (the runtime calls this under the shard lock while
    /// reclaiming a process whose OS pid is gone). A live producer mid-push
    /// is indistinguishable from a dead one — repairing under it would hand
    /// its slot to the next lap while it still thinks it owns it.
    pub fn repair_stranded(&self, seg: &ShmSegment, recovered: &mut Vec<u64>) -> u64 {
        let cap = self.cap.load(Ordering::Acquire);
        if cap == 0 {
            return 0;
        }
        let mask = cap - 1;
        let buf = self.buf.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut stranded = 0;
        for pos in head..tail {
            // SAFETY: `buf` is a live slot array of `cap` entries; the mask
            // keeps the index in range.
            let slot = unsafe { seg.sref(Self::slot_off(buf, pos, mask)) };
            if slot.seq.load(Ordering::Acquire) == pos + 1 {
                recovered.push(slot.value.load(Ordering::Relaxed));
            } else {
                // `seq == pos`: reserved (tail CAS won) but never
                // published — the corpse's claim. Retire it.
                stranded += 1;
            }
            slot.seq.store(pos + cap, Ordering::Release);
        }
        self.head.store(tail, Ordering::Release);
        stranded
    }

    /// Test-only fault injection: claims one position exactly as `push`
    /// does and then "dies" — no value store, no sequence publish. Leaves
    /// the ring in precisely the state a producer killed at the
    /// `ring.push.reserved` crash point leaves behind, so downstream test
    /// suites can drive [`SubmitRing::repair_stranded`] (and the model
    /// checker can enumerate its interleavings) without process kills.
    /// Returns `false` when the ring is full or uninitialized (no position
    /// was claimed). Never call this outside a test: the claim is
    /// unrecoverable except through repair.
    #[doc(hidden)]
    pub fn strand_one(&self, seg: &ShmSegment) -> bool {
        let cap = self.cap.load(Ordering::Acquire);
        if cap == 0 {
            return false;
        }
        let mask = cap - 1;
        let buf = self.buf.load(Ordering::Acquire);
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            // SAFETY: as in `push`.
            let slot = unsafe { seg.sref(Self::slot_off(buf, pos, mask)) };
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&pos) {
                std::cmp::Ordering::Equal => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return true, // claimed; die before publishing
                        Err(current) => pos = current,
                    }
                }
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Racy occupancy estimate (exact when quiescent).
    #[inline]
    pub fn len(&self) -> u64 {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the ring currently holds no entries (racy).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SubmitRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

/// Largest supported lane count per [`LaneRing`] (the in-segment array is
/// sized for it).
pub const MAX_SUBMIT_LANES: usize = 8;

/// A small array of [`SubmitRing`] *lanes* plus a dirty-lane bitmap:
/// the per-producer fan-out of one process's submission channel.
///
/// With a single ring, every producer thread of a process CAS-contends on
/// one `tail` word; with lanes, each producer hashes to its own lane
/// (`tag % lanes`, where `tag` is a per-producer-thread id), so disjoint
/// producers claim slots on disjoint cache lines. FIFO holds **per lane**
/// — and therefore per producer thread, since a producer's tag is stable —
/// while cross-lane order is decided by the consumer's drain order (the
/// same trade the sharded scheduler already documents for cross-shard
/// order).
///
/// Producers mark their lane in `lane_mask` (Release) *after* a
/// successful push; the single consumer clears the bitmap (AcqRel swap in
/// [`LaneRing::take_dirty`]) *before* draining the lanes it saw, so a
/// concurrent push either lands in a drained-later position or re-marks
/// the bitmap — a value is never stranded behind a cleared bit.
///
/// `repr(C)`, offset-linked and zero-valid: a zeroed `LaneRing` has zero
/// lanes, pushes fail and drains see nothing until [`LaneRing::init`].
#[repr(C)]
pub struct LaneRing {
    /// Number of active lanes (a power of two ≤ [`MAX_SUBMIT_LANES`]);
    /// `0` until initialized.
    lanes: AtomicU64,
    /// Bit per lane that may hold entries; see the type docs for the
    /// marking discipline.
    lane_mask: AtomicU64,
    rings: [SubmitRing; MAX_SUBMIT_LANES],
}

impl LaneRing {
    /// Allocates `lanes` rings of `capacity` slots each and publishes the
    /// lane count. Idempotent: an initialized `LaneRing` is left untouched
    /// (the existing lane count wins).
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero, not a power of two, or above
    /// [`MAX_SUBMIT_LANES`]; or when `capacity` is not a power of two.
    pub fn init(&self, seg: &ShmSegment, lanes: usize, capacity: usize) -> Result<(), AllocError> {
        assert!(
            lanes.is_power_of_two() && lanes <= MAX_SUBMIT_LANES,
            "lane count must be a power of two at most {MAX_SUBMIT_LANES}, got {lanes}"
        );
        if self.lanes.load(Ordering::Acquire) != 0 {
            return Ok(());
        }
        for ring in &self.rings[..lanes] {
            ring.init(seg, capacity)?;
        }
        // Publishing a nonzero lane count is what makes the lanes visible
        // to producers; Release pairs with their Acquire load.
        self.lanes.store(lanes as u64, Ordering::Release);
        Ok(())
    }

    /// Whether [`LaneRing::init`] has run.
    #[inline]
    pub fn is_init(&self) -> bool {
        self.lanes.load(Ordering::Acquire) != 0
    }

    /// Number of active lanes, `0` when uninitialized.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes.load(Ordering::Acquire) as usize
    }

    /// The lane a producer with identity `tag` pushes to.
    #[inline]
    pub fn lane_of(&self, tag: u64) -> usize {
        let lanes = self.lanes.load(Ordering::Acquire);
        if lanes == 0 {
            0
        } else {
            (tag & (lanes - 1)) as usize
        }
    }

    /// Pushes `value` into producer `tag`'s lane and marks the lane dirty;
    /// `false` when that lane is full or the `LaneRing` is uninitialized
    /// (the caller takes its fallback path — a full lane does **not**
    /// spill into a sibling lane, preserving per-producer FIFO).
    pub fn push(&self, seg: &ShmSegment, tag: u64, value: u64) -> bool {
        let lanes = self.lanes.load(Ordering::Acquire);
        if lanes == 0 {
            return false;
        }
        let lane = (tag & (lanes - 1)) as usize;
        if !self.rings[lane].push(seg, value) {
            return false;
        }
        // A producer dying here has published its entry but not the dirty
        // bit: mask-guided drains never visit the lane, so the entry sits
        // until a full sweep (`repair_stranded` visits every lane).
        crash_point("ring.lane.unmarked");
        self.lane_mask.fetch_or(1 << lane, Ordering::Release);
        true
    }

    /// Batch push into producer `tag`'s lane: one tail reservation for the
    /// whole prefix ([`SubmitRing::push_n`]), one dirty-mark. Returns how
    /// many values were pushed.
    pub fn push_n(&self, seg: &ShmSegment, tag: u64, values: &[u64]) -> usize {
        let lanes = self.lanes.load(Ordering::Acquire);
        if lanes == 0 {
            return 0;
        }
        let lane = (tag & (lanes - 1)) as usize;
        let pushed = self.rings[lane].push_n(seg, values);
        if pushed > 0 {
            self.lane_mask.fetch_or(1 << lane, Ordering::Release);
        }
        pushed
    }

    /// Clears and returns the dirty-lane bitmap (single consumer only).
    ///
    /// AcqRel: the Acquire half makes the marked lanes' pushes visible,
    /// the Release half orders the clear before the drain so a producer
    /// racing with the drain re-marks rather than being missed. The caller
    /// must drain every lane whose bit is set.
    #[inline]
    pub fn take_dirty(&self) -> u64 {
        self.lane_mask.swap(0, Ordering::AcqRel)
    }

    /// Direct access to lane `i` (consumer drain / tests).
    #[inline]
    pub fn lane(&self, i: usize) -> &SubmitRing {
        &self.rings[i]
    }

    /// Sweeps **every** lane — the dirty bitmap is deliberately ignored,
    /// because a dead producer may have died between its push and its
    /// dirty-mark (`ring.lane.unmarked`) — recovering published entries
    /// into `recovered` and retiring stranded reservations; see
    /// [`SubmitRing::repair_stranded`] for the per-lane semantics and the
    /// dead-producers contract. Clears the dirty bitmap (every lane is left
    /// empty). Returns the number of stranded reservations retired.
    pub fn repair_stranded(&self, seg: &ShmSegment, recovered: &mut Vec<u64>) -> u64 {
        let lanes = self.lanes.load(Ordering::Acquire) as usize;
        let mut stranded = 0;
        for ring in &self.rings[..lanes] {
            stranded += ring.repair_stranded(seg, recovered);
        }
        self.lane_mask.store(0, Ordering::Release);
        stranded
    }

    /// Racy occupancy estimate across all lanes (exact when quiescent).
    pub fn len(&self) -> u64 {
        let lanes = self.lanes.load(Ordering::Acquire) as usize;
        self.rings[..lanes].iter().map(|r| r.len()).sum()
    }

    /// Whether every lane is currently empty (racy).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for LaneRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneRing")
            .field("lanes", &self.lanes())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SegmentConfig;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    fn seg() -> ShmSegment {
        ShmSegment::create(SegmentConfig {
            size: 4 * 1024 * 1024,
            max_cpus: 2,
        })
    }

    fn ring(seg: &ShmSegment, cap: usize) -> &SubmitRing {
        let off = seg
            .alloc_zeroed(std::mem::size_of::<SubmitRing>(), 0)
            .unwrap();
        // SAFETY: zeroed SubmitRing is a valid uninitialized ring.
        let r: &SubmitRing = unsafe { seg.sref(off.cast()) };
        if cap > 0 {
            r.init(seg, cap).unwrap();
        }
        r
    }

    #[test]
    fn uninitialized_ring_fails_benignly() {
        let s = seg();
        let r = ring(&s, 0);
        assert!(!r.is_init());
        assert!(!r.push(&s, 7));
        assert_eq!(r.pop(&s), None);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn fifo_roundtrip() {
        let s = seg();
        let r = ring(&s, 8);
        for v in 1..=5u64 {
            assert!(r.push(&s, v));
        }
        assert_eq!(r.len(), 5);
        for v in 1..=5u64 {
            assert_eq!(r.pop(&s), Some(v));
        }
        assert_eq!(r.pop(&s), None);
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_rejects_instead_of_blocking() {
        let s = seg();
        let r = ring(&s, 4);
        for v in 0..4u64 {
            assert!(r.push(&s, v));
        }
        assert!(!r.push(&s, 99), "full ring must fail fast");
        assert_eq!(r.pop(&s), Some(0));
        assert!(r.push(&s, 99), "one pop frees one slot");
    }

    #[test]
    fn wraps_across_many_laps() {
        let s = seg();
        let r = ring(&s, 2);
        for lap in 0..1000u64 {
            assert!(r.push(&s, lap * 2));
            assert!(r.push(&s, lap * 2 + 1));
            assert_eq!(r.pop(&s), Some(lap * 2));
            assert_eq!(r.pop(&s), Some(lap * 2 + 1));
        }
    }

    #[test]
    fn init_is_idempotent() {
        let s = seg();
        let r = ring(&s, 8);
        r.push(&s, 42);
        r.init(&s, 16).unwrap(); // must not clobber the live ring
        assert_eq!(r.capacity(), 8);
        assert_eq!(r.pop(&s), Some(42));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let s = seg();
        let _ = ring(&s, 6);
    }

    #[test]
    fn push_n_reserves_a_prefix_and_preserves_fifo() {
        let s = seg();
        let r = ring(&s, 8);
        assert_eq!(r.push_n(&s, &[1, 2, 3]), 3);
        assert!(r.push(&s, 4));
        // Only 4 slots free: a 6-value batch pushes a 4-value prefix.
        assert_eq!(r.push_n(&s, &[5, 6, 7, 8, 9, 10]), 4);
        assert_eq!(r.push_n(&s, &[99]), 0, "full ring pushes nothing");
        for v in 1..=8u64 {
            assert_eq!(r.pop(&s), Some(v));
        }
        assert_eq!(r.pop(&s), None);
        // After a pop cycle the freed slots are claimable again.
        assert_eq!(r.push_n(&s, &[11, 12]), 2);
        assert_eq!(r.pop(&s), Some(11));
        assert_eq!(r.pop(&s), Some(12));
    }

    #[test]
    fn push_n_on_uninitialized_or_empty_input_is_benign() {
        let s = seg();
        let uninit = ring(&s, 0);
        assert_eq!(uninit.push_n(&s, &[1, 2]), 0);
        let r = ring(&s, 4);
        assert_eq!(r.push_n(&s, &[]), 0);
        assert!(r.is_empty());
    }

    /// Batch and single producers interleave on one ring across laps:
    /// exactly-once delivery and per-producer order must hold.
    #[test]
    fn push_n_interoperates_with_push_across_laps() {
        let s = seg();
        let r = ring(&s, 4);
        let mut expect = Vec::new();
        let mut next = 0u64;
        for _ in 0..500 {
            let batch: Vec<u64> = (next..next + 3).collect();
            let pushed = r.push_n(&s, &batch);
            next += pushed as u64;
            expect.extend(&batch[..pushed]);
            if r.push(&s, u64::MAX) {
                expect.push(u64::MAX);
            }
            while let Some(v) = r.pop(&s) {
                assert_eq!(v, expect.remove(0));
            }
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn lane_ring_zero_valid_and_idempotent_init() {
        let s = seg();
        let off = s.alloc_zeroed(std::mem::size_of::<LaneRing>(), 0).unwrap();
        // SAFETY: zeroed LaneRing is a valid uninitialized lane ring.
        let lr: &LaneRing = unsafe { s.sref(off.cast()) };
        assert!(!lr.is_init());
        assert!(!lr.push(&s, 0, 7));
        assert_eq!(lr.push_n(&s, 0, &[1]), 0);
        assert_eq!(lr.take_dirty(), 0);
        lr.init(&s, 4, 8).unwrap();
        assert_eq!(lr.lanes(), 4);
        lr.init(&s, 2, 8).unwrap(); // must not clobber the live lanes
        assert_eq!(lr.lanes(), 4);
    }

    #[test]
    fn lanes_separate_producers_and_mark_dirty_bits() {
        let s = seg();
        let off = s.alloc_zeroed(std::mem::size_of::<LaneRing>(), 0).unwrap();
        // SAFETY: as above.
        let lr: &LaneRing = unsafe { s.sref(off.cast()) };
        lr.init(&s, 4, 8).unwrap();
        // Tags 0 and 5 land in lanes 0 and 1; tag 4 shares lane 0 (hash).
        assert!(lr.push(&s, 0, 10));
        assert!(lr.push(&s, 5, 20));
        assert!(lr.push(&s, 4, 11));
        assert_eq!(lr.lane_of(4), 0);
        assert_eq!(lr.len(), 3);
        let dirty = lr.take_dirty();
        assert_eq!(dirty, 0b11, "lanes 0 and 1 marked");
        assert_eq!(lr.take_dirty(), 0, "bitmap cleared by the first take");
        // Per-lane FIFO: lane 0 holds tag-0 then tag-4 pushes.
        assert_eq!(lr.lane(0).pop(&s), Some(10));
        assert_eq!(lr.lane(0).pop(&s), Some(11));
        assert_eq!(lr.lane(1).pop(&s), Some(20));
        assert!(lr.is_empty());
    }

    #[test]
    fn lane_full_does_not_spill_to_sibling_lanes() {
        let s = seg();
        let off = s.alloc_zeroed(std::mem::size_of::<LaneRing>(), 0).unwrap();
        // SAFETY: as above.
        let lr: &LaneRing = unsafe { s.sref(off.cast()) };
        lr.init(&s, 2, 2).unwrap();
        assert!(lr.push(&s, 0, 1));
        assert!(lr.push(&s, 0, 2));
        assert!(!lr.push(&s, 0, 3), "lane 0 full: fail fast, no spill");
        assert!(lr.push(&s, 1, 4), "lane 1 unaffected");
        assert_eq!(lr.push_n(&s, 0, &[5, 6]), 0);
        assert_eq!(lr.push_n(&s, 1, &[7, 8]), 1, "one slot left in lane 1");
    }

    /// Concurrent producers on distinct lanes plus batch pushes: every
    /// value exactly once, FIFO per producer.
    #[test]
    fn lane_ring_multi_producer_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = if cfg!(miri) { 60 } else { 3_000 };
        const BATCH: usize = 8;
        let s = seg();
        let off = s.alloc_zeroed(std::mem::size_of::<LaneRing>(), 0).unwrap();
        // SAFETY: the LaneRing lives in the segment for the whole test.
        let lr: &LaneRing = unsafe { s.sref(off.cast()) };
        lr.init(&s, 2, 8).unwrap(); // 4 producers share 2 lanes
        let lr_addr = lr as *const LaneRing as usize;

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let s = s.clone();
                thread::spawn(move || {
                    // SAFETY: as above.
                    let lr = unsafe { &*(lr_addr as *const LaneRing) };
                    let mut i = 0;
                    while i < PER_PRODUCER {
                        let hi = (i + BATCH as u64).min(PER_PRODUCER);
                        let batch: Vec<u64> = (i..hi).map(|j| p * PER_PRODUCER + j).collect();
                        let pushed = lr.push_n(&s, p, &batch);
                        i += pushed as u64;
                        if pushed == 0 {
                            thread::yield_now(); // full: consumer will drain
                        }
                    }
                })
            })
            .collect();

        let consumer = {
            let s = s.clone();
            thread::spawn(move || {
                // SAFETY: as above.
                let lr = unsafe { &*(lr_addr as *const LaneRing) };
                let mut last = vec![None::<u64>; PRODUCERS as usize];
                let mut got = 0;
                while got < PRODUCERS * PER_PRODUCER {
                    let dirty = lr.take_dirty();
                    if dirty == 0 {
                        thread::yield_now();
                        continue;
                    }
                    for lane in 0..lr.lanes() {
                        if dirty & (1 << lane) == 0 {
                            continue;
                        }
                        while let Some(v) = lr.lane(lane).pop(&s) {
                            let p = (v / PER_PRODUCER) as usize;
                            let i = v % PER_PRODUCER;
                            if let Some(prev) = last[p] {
                                assert!(i > prev, "producer {p} reordered");
                            }
                            last[p] = Some(i);
                            got += 1;
                        }
                    }
                }
                // Drained everything: each producer's last index is final.
                for (p, l) in last.iter().enumerate() {
                    assert_eq!(*l, Some(PER_PRODUCER - 1), "producer {p} lost values");
                }
            })
        };

        for p in producers {
            p.join().unwrap();
        }
        consumer.join().unwrap();
    }

    /// The `ring.push.reserved` crash window: a producer claims a position
    /// (tail CAS) and dies before publishing the sequence word. The claim
    /// wedges `pop`; `repair_stranded` retires it, recovers the published
    /// entries stuck behind it, and leaves the ring fully reusable.
    #[test]
    fn repair_retires_stranded_reservation_and_recovers_survivors() {
        let s = seg();
        let r = ring(&s, 8);
        assert!(r.push(&s, 1));
        // Dead producer: wins the position claim, never publishes (the
        // test has private access, so the death is two missing stores).
        assert_eq!(r.tail.fetch_add(1, Ordering::Relaxed), 1);
        assert!(r.push(&s, 3), "a later producer lands behind the corpse");
        assert_eq!(r.pop(&s), Some(1));
        assert_eq!(r.pop(&s), None, "stranded reservation must wedge pop");
        let mut recovered = Vec::new();
        assert_eq!(r.repair_stranded(&s, &mut recovered), 1);
        assert_eq!(recovered, vec![3], "published survivor recovered");
        assert!(r.is_empty());
        // The retired slot is claimable again on the next lap.
        for v in 10..18u64 {
            assert!(r.push(&s, v), "ring not reusable after repair");
        }
        for v in 10..18u64 {
            assert_eq!(r.pop(&s), Some(v));
        }
    }

    /// The `ring.push_n.reserved`/`ring.push_n.publish` windows: a batch
    /// reservation dies mid-publication, stranding its suffix.
    #[test]
    fn repair_retires_partially_published_batch() {
        let s = seg();
        let r = ring(&s, 4);
        // Dead batch producer: reserves three positions, publishes one.
        let pos = r.tail.fetch_add(3, Ordering::Relaxed);
        assert_eq!(pos, 0);
        let buf = r.buf.load(Ordering::Acquire);
        // SAFETY: freshly initialized slot array, in range.
        let slot = unsafe { s.sref(SubmitRing::slot_off(buf, 0, 3)) };
        slot.value.store(7, Ordering::Relaxed);
        slot.seq.store(1, Ordering::Release);
        assert_eq!(r.pop(&s), Some(7));
        assert_eq!(r.pop(&s), None, "unpublished suffix wedges the ring");
        let mut recovered = Vec::new();
        assert_eq!(r.repair_stranded(&s, &mut recovered), 2);
        assert!(recovered.is_empty());
        assert!(r.is_empty());
        assert!(r.push(&s, 9));
        assert_eq!(r.pop(&s), Some(9));
    }

    #[test]
    fn repair_on_uninitialized_or_clean_ring_is_benign() {
        let s = seg();
        let mut recovered = Vec::new();
        let uninit = ring(&s, 0);
        assert_eq!(uninit.repair_stranded(&s, &mut recovered), 0);
        let r = ring(&s, 4);
        assert_eq!(r.repair_stranded(&s, &mut recovered), 0);
        assert!(recovered.is_empty());
        r.push(&s, 5);
        assert_eq!(r.repair_stranded(&s, &mut recovered), 0);
        assert_eq!(recovered, vec![5], "clean entries recovered, none stranded");
    }

    /// The `ring.lane.unmarked` window: an entry published without its
    /// dirty bit is invisible to mask-guided drains; the lane sweep must
    /// find it regardless of the bitmap, and repair every lane.
    #[test]
    fn lane_repair_sweeps_all_lanes_ignoring_dirty_bits() {
        let s = seg();
        let off = s.alloc_zeroed(std::mem::size_of::<LaneRing>(), 0).unwrap();
        // SAFETY: zeroed LaneRing is a valid uninitialized lane ring.
        let lr: &LaneRing = unsafe { s.sref(off.cast()) };
        lr.init(&s, 2, 4).unwrap();
        // Lane 0: published entry whose dirty-mark never happened.
        assert!(lr.lane(0).push(&s, 21));
        // Lane 1: stranded reservation plus a published survivor.
        assert!(lr.push(&s, 1, 31));
        assert_eq!(lr.lane(1).tail.fetch_add(1, Ordering::Relaxed), 1);
        assert!(lr.push(&s, 1, 32));
        // Consumer already took the dirty bits (and found only lane 1).
        assert_eq!(lr.take_dirty(), 0b10);
        let mut recovered = Vec::new();
        assert_eq!(lr.repair_stranded(&s, &mut recovered), 1);
        recovered.sort_unstable();
        assert_eq!(recovered, vec![21, 31, 32]);
        assert!(lr.is_empty());
        assert_eq!(lr.take_dirty(), 0, "repair clears the bitmap");
        assert!(lr.push(&s, 0, 40), "lanes reusable after repair");
        assert_eq!(lr.lane(0).pop(&s), Some(40));
    }

    /// Many producers, one consumer, a tiny ring: every pushed value must
    /// come out exactly once, in a per-producer FIFO order.
    #[test]
    fn multi_producer_delivery_is_exactly_once_and_fifo_per_producer() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = if cfg!(miri) { 100 } else { 5_000 };
        let s = seg();
        let r = ring(&s, 8) as *const SubmitRing as usize;
        let seen = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let s = s.clone();
                thread::spawn(move || {
                    // SAFETY: the ring lives in the segment for the whole test.
                    let r = unsafe { &*(r as *const SubmitRing) };
                    for i in 0..PER_PRODUCER {
                        let v = p * PER_PRODUCER + i;
                        while !r.push(&s, v) {
                            thread::yield_now(); // full: consumer will drain
                        }
                    }
                })
            })
            .collect();

        let consumer = {
            let s = s.clone();
            let seen = Arc::clone(&seen);
            thread::spawn(move || {
                // SAFETY: as above.
                let r = unsafe { &*(r as *const SubmitRing) };
                let mut last = vec![None::<u64>; PRODUCERS as usize];
                let mut got = 0;
                while got < PRODUCERS * PER_PRODUCER {
                    match r.pop(&s) {
                        Some(v) => {
                            let p = (v / PER_PRODUCER) as usize;
                            let i = v % PER_PRODUCER;
                            if let Some(prev) = last[p] {
                                assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                            }
                            last[p] = Some(i);
                            seen[v as usize].fetch_add(1, Ordering::Relaxed);
                            got += 1;
                        }
                        None => thread::yield_now(),
                    }
                }
            })
        };

        for p in producers {
            p.join().unwrap();
        }
        consumer.join().unwrap();
        for (v, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "value {v} delivered wrong");
        }
    }
}
