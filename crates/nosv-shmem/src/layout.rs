//! Segment geometry: where each metadata region lives inside the segment.
//!
//! The layout is computed once at segment creation and is a pure function
//! of the configuration (segment size, number of CPUs), so every attached
//! process derives the same geometry from the header alone:
//!
//! ```text
//! +--------------------+ 0
//! | Header             |   magic, config, region offsets, user root
//! +--------------------+ header_end
//! | Registry           |   MAX_PROCS process slots (attach/detach)
//! +--------------------+ registry_off + ...
//! | Slab global state  |   chunk-table lock, per-class partial lists
//! +--------------------+
//! | Per-CPU magazines  |   max_cpus x NUM_CLASSES padded magazine slots
//! +--------------------+
//! | Chunk headers      |   one descriptor per data chunk
//! +--------------------+ data_off (chunk-aligned)
//! | Data chunks ...    |   CHUNK_SIZE each, carved into slab objects
//! +--------------------+ total_size
//! ```
//!
//! Runtime-owned state — the scheduler root, task descriptors, and the
//! per-process [`crate::SubmitRing`] slot arrays — is not part of this
//! fixed geometry: it lives in the data chunks, reached through the
//! header's `user_root` anchor, and is allocated through the SLAB like any
//! other in-segment object.

/// Size of one allocator chunk. Every chunk serves a single size class, or
/// participates in one contiguous "large" run.
pub const CHUNK_SIZE: usize = 64 * 1024;

/// The power-of-two object size classes served by the SLAB allocator.
///
/// 64 bytes (one cache line) up to half a chunk; larger requests take whole
/// chunk runs. The smallest class must be able to hold the intra-chunk free
/// list link (8 bytes), which it trivially does.
pub const SIZE_CLASSES: [usize; 10] = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

/// Number of size classes.
pub const NUM_CLASSES: usize = SIZE_CLASSES.len();

/// Maximum number of simultaneously attached processes.
pub const MAX_PROCS: usize = 64;

/// Capacity (entries) of one per-CPU magazine.
pub const MAG_CAP: usize = 24;

/// Bytes reserved per magazine (capacity + lock + len, padded so adjacent
/// CPU magazines never share a cache line).
pub const MAG_STRIDE: usize = 256;

/// Bytes reserved for the segment header.
pub const HEADER_BYTES: usize = 256;

/// Bytes reserved per registry slot.
pub const PROC_SLOT_BYTES: usize = 64;

/// Bytes reserved for the slab global state (lock + per-class lists + stats).
pub const SLAB_GLOBAL_BYTES: usize = 512;

/// Bytes reserved per chunk header.
pub const CHUNK_HDR_BYTES: usize = 32;

/// Resolved offsets of every metadata region within a segment.
///
/// Derived deterministically from `(total_size, max_cpus)`; stored in the
/// header at creation and recomputed (and cross-checked) on attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGeometry {
    /// Total bytes in the segment.
    pub total_size: usize,
    /// Number of CPUs the per-CPU caches are sized for.
    pub max_cpus: usize,
    /// Offset of the process registry.
    pub registry_off: usize,
    /// Offset of the slab allocator's global state.
    pub slab_global_off: usize,
    /// Offset of the per-CPU magazine array.
    pub mags_off: usize,
    /// Offset of the chunk-header table.
    pub chunk_hdrs_off: usize,
    /// Offset of the first data chunk (multiple of [`CHUNK_SIZE`]).
    pub data_off: usize,
    /// Number of data chunks.
    pub n_chunks: usize,
}

impl SegmentGeometry {
    /// Computes the geometry for a segment of `total_size` bytes serving
    /// `max_cpus` CPUs. Returns `None` if the segment is too small to hold
    /// the metadata plus at least one data chunk.
    pub fn compute(total_size: usize, max_cpus: usize) -> Option<SegmentGeometry> {
        if max_cpus == 0 {
            return None;
        }
        let registry_off = HEADER_BYTES;
        let slab_global_off = registry_off + MAX_PROCS * PROC_SLOT_BYTES;
        let mags_off = slab_global_off + SLAB_GLOBAL_BYTES;
        let chunk_hdrs_off = mags_off + max_cpus * NUM_CLASSES * MAG_STRIDE;

        // Solve for the largest n_chunks such that
        //   align_up(chunk_hdrs_off + n * CHUNK_HDR_BYTES) + n * CHUNK_SIZE <= total
        let mut n_chunks =
            total_size.saturating_sub(chunk_hdrs_off) / (CHUNK_SIZE + CHUNK_HDR_BYTES);
        loop {
            if n_chunks == 0 {
                return None;
            }
            let data_off = align_up(chunk_hdrs_off + n_chunks * CHUNK_HDR_BYTES, CHUNK_SIZE);
            if data_off + n_chunks * CHUNK_SIZE <= total_size {
                return Some(SegmentGeometry {
                    total_size,
                    max_cpus,
                    registry_off,
                    slab_global_off,
                    mags_off,
                    chunk_hdrs_off,
                    data_off,
                    n_chunks,
                });
            }
            n_chunks -= 1;
        }
    }

    /// Offset of the header for chunk `idx`.
    #[inline]
    pub fn chunk_hdr(&self, idx: usize) -> usize {
        debug_assert!(idx < self.n_chunks);
        self.chunk_hdrs_off + idx * CHUNK_HDR_BYTES
    }

    /// Offset of the first byte of chunk `idx`.
    #[inline]
    pub fn chunk_data(&self, idx: usize) -> usize {
        debug_assert!(idx < self.n_chunks);
        self.data_off + idx * CHUNK_SIZE
    }

    /// Chunk index containing data offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off` does not fall inside the data region — freeing a
    /// pointer that the allocator never produced is always a caller bug.
    #[inline]
    pub fn chunk_of(&self, off: usize) -> usize {
        assert!(
            off >= self.data_off && off < self.data_off + self.n_chunks * CHUNK_SIZE,
            "offset {off:#x} is outside the data region"
        );
        (off - self.data_off) / CHUNK_SIZE
    }

    /// Offset of the magazine for (`cpu`, `class`).
    #[inline]
    pub fn magazine(&self, cpu: usize, class: usize) -> usize {
        debug_assert!(cpu < self.max_cpus && class < NUM_CLASSES);
        self.mags_off + (cpu * NUM_CLASSES + class) * MAG_STRIDE
    }
}

/// Smallest size class index that fits `size` bytes, or `None` for large
/// allocations that need whole chunks.
#[inline]
pub fn class_for(size: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= size)
}

/// Rounds `x` up to a multiple of `align` (a power of two).
#[inline]
pub const fn align_up(x: usize, align: usize) -> usize {
    (x + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_powers_of_two() {
        for w in SIZE_CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for c in SIZE_CLASSES {
            assert!(c.is_power_of_two());
            assert!(c <= CHUNK_SIZE / 2);
        }
    }

    #[test]
    fn class_for_boundaries() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(64), Some(0));
        assert_eq!(class_for(65), Some(1));
        assert_eq!(class_for(32768), Some(NUM_CLASSES - 1));
        assert_eq!(class_for(32769), None);
    }

    #[test]
    fn geometry_regions_are_disjoint_and_ordered() {
        let g = SegmentGeometry::compute(16 * 1024 * 1024, 8).unwrap();
        assert!(HEADER_BYTES <= g.registry_off);
        assert!(g.registry_off < g.slab_global_off);
        assert!(g.slab_global_off < g.mags_off);
        assert!(g.mags_off < g.chunk_hdrs_off);
        assert!(g.chunk_hdrs_off + g.n_chunks * CHUNK_HDR_BYTES <= g.data_off);
        assert_eq!(g.data_off % CHUNK_SIZE, 0);
        assert!(g.data_off + g.n_chunks * CHUNK_SIZE <= g.total_size);
        assert!(g.n_chunks > 0);
    }

    #[test]
    fn geometry_uses_most_of_the_segment() {
        let total = 64 * 1024 * 1024;
        let g = SegmentGeometry::compute(total, 64).unwrap();
        let data_bytes = g.n_chunks * CHUNK_SIZE;
        // Metadata overhead should stay small (< 5% at this size).
        assert!(
            data_bytes * 100 / total >= 95,
            "data {data_bytes} of {total}"
        );
    }

    #[test]
    fn too_small_segment_is_rejected() {
        assert!(SegmentGeometry::compute(4096, 4).is_none());
        assert!(SegmentGeometry::compute(1024 * 1024, 0).is_none());
    }

    #[test]
    fn chunk_of_roundtrip() {
        let g = SegmentGeometry::compute(8 * 1024 * 1024, 4).unwrap();
        for idx in [0, 1, g.n_chunks - 1] {
            let base = g.chunk_data(idx);
            assert_eq!(g.chunk_of(base), idx);
            assert_eq!(g.chunk_of(base + CHUNK_SIZE - 1), idx);
        }
    }

    #[test]
    #[should_panic(expected = "outside the data region")]
    fn chunk_of_rejects_metadata_offsets() {
        let g = SegmentGeometry::compute(8 * 1024 * 1024, 4).unwrap();
        g.chunk_of(g.chunk_hdrs_off);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
    }
}
