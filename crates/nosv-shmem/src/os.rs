//! OS-shared segment backing: `memfd_create` / `shm_open` + `mmap(MAP_SHARED)`.
//!
//! This module is the thin layer that turns the position-independent segment
//! into a *real* OS-shared mapping so independent processes can co-execute
//! over it (paper §3.1: "a POSIX shared memory segment mapped by every
//! participating process"). Everything above it — SLAB, rings, registry,
//! claim table — is already offset-linked and zero-valid, so the only new
//! machinery needed is creating, publishing, and attaching the mapping
//! itself.
//!
//! Two backends, probed at runtime ([`os_backing_available`]):
//!
//! * **memfd** (preferred): `memfd_create` yields an anonymous kernel-backed
//!   file that vanishes automatically when the last descriptor and mapping
//!   are gone — no name to leak even on SIGKILL. A foreign process reaches
//!   the memory by reopening `/proc/<creator-pid>/fd/<fd>`.
//! * **shm_open** (fallback): a named `/dev/shm` object; the creating
//!   process `shm_unlink`s it on drop.
//!
//! Discovery goes through a tiny *link file* in the temp directory
//! (`nosv-seg-<name>`) recording the backend and how to reopen it. The link
//! file is written **after** the creator fully initializes the segment
//! header, so its existence is the cross-process "segment is ready"
//! synchronization point; the creator removes it on drop. A stale link file
//! left by a SIGKILLed creator is harmless: attaching through it fails
//! (the `/proc` path is gone), it never resurrects a segment.
//!
//! All mappings are aligned to [`CHUNK_SIZE`] via an over-reserve +
//! `MAP_FIXED` carve, matching the heap backing's alignment guarantee, so
//! object pointers derived from offsets have identical alignment under both
//! backings.

#[cfg(all(target_os = "linux", not(miri)))]
use std::ffi::CString;
#[cfg(all(target_os = "linux", not(miri)))]
use std::io::{Read, Write};
#[cfg(all(target_os = "linux", not(miri)))]
use std::path::PathBuf;
#[cfg(all(target_os = "linux", not(miri)))]
use std::sync::OnceLock;

#[cfg(all(target_os = "linux", not(miri)))]
use crate::layout::CHUNK_SIZE;

/// Failure to create or attach an OS-shared segment mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Neither `memfd_create` nor `shm_open` works in this environment
    /// (probe failed); only the in-process heap backing is available.
    Unsupported,
    /// Segment names are restricted to `[A-Za-z0-9._-]`, nonempty, ≤ 128
    /// bytes.
    BadName,
    /// No segment is published under the requested name (no link file, or
    /// the creating process is gone).
    NotFound,
    /// A segment is already published under the requested name.
    AlreadyExists,
    /// The mapping exists but its header does not validate (wrong magic,
    /// size mismatch, or incompatible format version).
    InvalidSegment(&'static str),
    /// An OS call failed.
    Os {
        /// Which call failed (e.g. `"mmap"`).
        call: &'static str,
        /// The `errno` value it failed with.
        errno: i32,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Unsupported => {
                write!(
                    f,
                    "OS-shared segment backing unavailable in this environment"
                )
            }
            MapError::BadName => write!(f, "invalid segment name"),
            MapError::NotFound => write!(f, "no segment published under this name"),
            MapError::AlreadyExists => write!(f, "a segment is already published under this name"),
            MapError::InvalidSegment(why) => write!(f, "segment failed validation: {why}"),
            MapError::Os { call, errno } => write!(f, "{call} failed with errno {errno}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Which OS backend a mapping uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsBackend {
    /// `memfd_create` + `/proc/<pid>/fd/<fd>` reopen.
    Memfd,
    /// `shm_open` named object.
    ShmOpen,
}

// ---- raw FFI ---------------------------------------------------------------
//
// Declared directly (the workspace deliberately has no external crates).
// Constants are the x86-64/aarch64 Linux values.

#[cfg(all(target_os = "linux", not(miri)))]
mod ffi {
    use std::os::raw::{c_char, c_int, c_long, c_uint, c_void};

    pub const PROT_NONE: c_int = 0;
    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 0x01;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MAP_FIXED: c_int = 0x10;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    pub const O_RDWR: c_int = 2;
    pub const O_CREAT: c_int = 0o100;
    pub const O_EXCL: c_int = 0o200;
    pub const SEEK_END: c_int = 2;
    pub const SYS_MEMFD_CREATE: c_long = 319;
    pub const ESRCH: c_int = 3;

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn syscall(num: c_long, ...) -> c_long;
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn ftruncate(fd: c_int, len: i64) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn open(path: *const c_char, flags: c_int, mode: c_uint) -> c_int;
        pub fn lseek(fd: c_int, offset: i64, whence: c_int) -> i64;
        pub fn kill(pid: c_int, sig: c_int) -> c_int;
        pub fn shm_open(name: *const c_char, oflag: c_int, mode: c_uint) -> c_int;
        pub fn shm_unlink(name: *const c_char) -> c_int;
        pub fn __errno_location() -> *mut c_int;
    }

    pub fn errno() -> c_int {
        // SAFETY: glibc/musl guarantee a valid thread-local errno slot.
        unsafe { *__errno_location() }
    }
}

#[cfg(all(target_os = "linux", not(miri)))]
use ffi::*;

/// Whether the given OS process is still alive (`kill(pid, 0)` probe).
///
/// `EPERM` counts as alive (the process exists, we may not signal it);
/// only `ESRCH` — or an impossible pid — counts as dead.
#[cfg(all(target_os = "linux", not(miri)))]
pub fn process_alive(os_pid: u32) -> bool {
    if os_pid == 0 || os_pid > i32::MAX as u32 {
        return false;
    }
    // SAFETY: signal 0 performs only the existence/permission check.
    let r = unsafe { kill(os_pid as i32, 0) };
    r == 0 || errno() != ESRCH
}

/// Non-Linux / Miri stub: reports every pid dead (the OS backing is unavailable
/// there, so no cross-process peers can exist).
#[cfg(any(not(target_os = "linux"), miri))]
pub fn process_alive(_os_pid: u32) -> bool {
    false
}

/// Path of the discovery link file for `name`.
#[cfg(all(target_os = "linux", not(miri)))]
fn link_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nosv-seg-{name}"))
}

/// Validates a segment name: nonempty, ≤ 128 bytes, `[A-Za-z0-9._-]` only.
pub(crate) fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// An OS-shared mapping of a segment-sized region.
///
/// Owns the mapping (and, for the creator, the published name): dropping
/// the creator's handle unmaps, closes the descriptor, removes the link
/// file, and (for the shm backend) `shm_unlink`s the object. Attachers
/// only unmap and close. With the memfd backend the kernel frees the
/// memory itself once the last mapping and descriptor are gone — the
/// paper's "last process to unregister deletes the segment" with no name
/// left to leak.
#[cfg(all(target_os = "linux", not(miri)))]
pub(crate) struct OsMapping {
    base: *mut u8,
    len: usize,
    fd: i32,
    backend: OsBackend,
    /// Link file for this mapping's name; removed on drop once published.
    link: PathBuf,
    published: std::sync::atomic::AtomicBool,
    /// Creator with shm backend only: object name to `shm_unlink` on drop.
    shm_name: Option<CString>,
}

#[cfg(all(target_os = "linux", not(miri)))]
impl OsMapping {
    pub(crate) fn base(&self) -> *mut u8 {
        self.base
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn backend(&self) -> OsBackend {
        self.backend
    }

    /// Creates the backing object and maps it, zero-filled, without
    /// publishing it yet.
    pub(crate) fn create(
        name: &str,
        len: usize,
        backend: OsBackend,
    ) -> Result<OsMapping, MapError> {
        let (fd, shm_name) = match backend {
            OsBackend::Memfd => (memfd_create_fd(name)?, None),
            OsBackend::ShmOpen => {
                // Uniquified by pid so a stale object from a crashed run
                // never collides; the link file records the exact name.
                let sname = CString::new(format!("/nosv-{name}.{}", std::process::id()))
                    .map_err(|_| MapError::BadName)?;
                // SAFETY: sname is a valid NUL-terminated string.
                let fd = unsafe { shm_open(sname.as_ptr(), O_RDWR | O_CREAT | O_EXCL, 0o600) };
                if fd < 0 {
                    return Err(MapError::Os {
                        call: "shm_open",
                        errno: errno(),
                    });
                }
                (fd, Some(sname))
            }
        };
        // SAFETY: fd is a fresh descriptor we own.
        if unsafe { ftruncate(fd, len as i64) } != 0 {
            let e = errno();
            cleanup_fd(fd, &shm_name);
            return Err(MapError::Os {
                call: "ftruncate",
                errno: e,
            });
        }
        let base = match map_chunk_aligned(fd, len) {
            Ok(p) => p,
            Err(e) => {
                cleanup_fd(fd, &shm_name);
                return Err(e);
            }
        };
        Ok(OsMapping {
            base,
            len,
            fd,
            backend,
            link: link_path(name),
            published: std::sync::atomic::AtomicBool::new(false),
            shm_name,
        })
    }

    /// Publishes the mapping under the name it was created with, by
    /// writing the link file.
    ///
    /// Call only after the segment header is fully initialized: the link
    /// file's appearance is what makes the segment discoverable, so it is
    /// the cross-process synchronization point. Fails with
    /// [`MapError::AlreadyExists`] if another live segment already owns
    /// the name.
    pub(crate) fn publish(&self) -> Result<(), MapError> {
        let path = self.link.clone();
        if path.exists() {
            // A link file whose creator is gone is stale; reclaim the name.
            match read_link_file(&path) {
                Ok(LinkRecord::Memfd { pid, .. }) | Ok(LinkRecord::Shm { pid, .. })
                    if process_alive(pid) =>
                {
                    return Err(MapError::AlreadyExists)
                }
                _ => {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        let record = match (self.backend, &self.shm_name) {
            (OsBackend::Memfd, _) => {
                format!("memfd {} {} {}\n", std::process::id(), self.fd, self.len)
            }
            (OsBackend::ShmOpen, Some(sname)) => {
                format!(
                    "shm {} {} {}\n",
                    sname.to_str().unwrap_or(""),
                    std::process::id(),
                    self.len
                )
            }
            (OsBackend::ShmOpen, None) => unreachable!("shm backend always records its name"),
        };
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(record.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if write.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return Err(MapError::Os {
                call: "link-file write",
                errno: 0,
            });
        }
        self.published
            .store(true, std::sync::atomic::Ordering::Release);
        Ok(())
    }

    /// Attaches to the segment published under `name`.
    pub(crate) fn attach(name: &str) -> Result<OsMapping, MapError> {
        let path = link_path(name);
        let record = read_link_file(&path)?;
        let (fd, backend) = match record {
            LinkRecord::Memfd { pid, fd, .. } => {
                let proc_path =
                    CString::new(format!("/proc/{pid}/fd/{fd}")).map_err(|_| MapError::BadName)?;
                // SAFETY: proc_path is a valid NUL-terminated string.
                let f = unsafe { open(proc_path.as_ptr(), O_RDWR, 0) };
                if f < 0 {
                    // Creator (or its descriptor) is gone: the published
                    // segment no longer exists.
                    return Err(MapError::NotFound);
                }
                (f, OsBackend::Memfd)
            }
            LinkRecord::Shm { ref name, .. } => {
                let sname = CString::new(name.as_str()).map_err(|_| MapError::BadName)?;
                // SAFETY: sname is a valid NUL-terminated string.
                let f = unsafe { shm_open(sname.as_ptr(), O_RDWR, 0) };
                if f < 0 {
                    return Err(MapError::NotFound);
                }
                (f, OsBackend::ShmOpen)
            }
        };
        // SAFETY: fd is a descriptor we just opened.
        let size = unsafe { lseek(fd, 0, SEEK_END) };
        if size <= 0 {
            // SAFETY: closing our own descriptor.
            unsafe { close(fd) };
            return Err(MapError::InvalidSegment("empty backing object"));
        }
        let len = size as usize;
        let base = match map_chunk_aligned(fd, len) {
            Ok(p) => p,
            Err(e) => {
                // SAFETY: closing our own descriptor.
                unsafe { close(fd) };
                return Err(e);
            }
        };
        Ok(OsMapping {
            base,
            len,
            fd,
            backend,
            link: path.to_path_buf(),
            published: std::sync::atomic::AtomicBool::new(false),
            shm_name: None,
        })
    }
}

#[cfg(all(target_os = "linux", not(miri)))]
impl Drop for OsMapping {
    fn drop(&mut self) {
        // SAFETY: base/len describe the mapping we created; fd is ours.
        unsafe {
            munmap(self.base.cast(), self.len);
            close(self.fd);
        }
        if let Some(sname) = &self.shm_name {
            // SAFETY: valid NUL-terminated string.
            unsafe { shm_unlink(sname.as_ptr()) };
        }
        if self.published.load(std::sync::atomic::Ordering::Acquire) {
            let _ = std::fs::remove_file(&self.link);
        }
    }
}

// SAFETY: the mapping is intentionally shared; all access above the raw
// bytes goes through atomics and in-segment locks (same argument as the
// heap backing).
#[cfg(all(target_os = "linux", not(miri)))]
unsafe impl Send for OsMapping {}
#[cfg(all(target_os = "linux", not(miri)))]
unsafe impl Sync for OsMapping {}

#[cfg(all(target_os = "linux", not(miri)))]
enum LinkRecord {
    Memfd { pid: u32, fd: i32 },
    Shm { name: String, pid: u32 },
}

#[cfg(all(target_os = "linux", not(miri)))]
fn read_link_file(path: &std::path::Path) -> Result<LinkRecord, MapError> {
    let mut text = String::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            if f.read_to_string(&mut text).is_err() {
                return Err(MapError::NotFound);
            }
        }
        Err(_) => return Err(MapError::NotFound),
    }
    let fields: Vec<&str> = text.split_whitespace().collect();
    match fields.as_slice() {
        ["memfd", pid, fd, _size] => match (pid.parse(), fd.parse()) {
            (Ok(pid), Ok(fd)) => Ok(LinkRecord::Memfd { pid, fd }),
            _ => Err(MapError::InvalidSegment("malformed link file")),
        },
        ["shm", name, pid, _size] => match pid.parse() {
            Ok(pid) => Ok(LinkRecord::Shm {
                name: (*name).to_string(),
                pid,
            }),
            Err(_) => Err(MapError::InvalidSegment("malformed link file")),
        },
        _ => Err(MapError::InvalidSegment("malformed link file")),
    }
}

#[cfg(all(target_os = "linux", not(miri)))]
fn memfd_create_fd(name: &str) -> Result<i32, MapError> {
    let cname = CString::new(format!("nosv-{name}")).map_err(|_| MapError::BadName)?;
    // SAFETY: memfd_create takes a name pointer and flags; no memory is
    // touched beyond reading the NUL-terminated name.
    let fd = unsafe { syscall(SYS_MEMFD_CREATE, cname.as_ptr(), 0u32) };
    if fd < 0 {
        return Err(MapError::Os {
            call: "memfd_create",
            errno: errno(),
        });
    }
    Ok(fd as i32)
}

#[cfg(all(target_os = "linux", not(miri)))]
fn cleanup_fd(fd: i32, shm_name: &Option<CString>) {
    // SAFETY: fd is ours; sname (if any) is a valid string we created.
    unsafe {
        close(fd);
        if let Some(sname) = shm_name {
            shm_unlink(sname.as_ptr());
        }
    }
}

/// Maps `len` bytes of `fd` at a [`CHUNK_SIZE`]-aligned address: reserve
/// `len + CHUNK_SIZE` of address space, `MAP_FIXED` the file at the first
/// aligned address inside, trim the slack.
#[cfg(all(target_os = "linux", not(miri)))]
fn map_chunk_aligned(fd: i32, len: usize) -> Result<*mut u8, MapError> {
    let reserve = len + CHUNK_SIZE;
    // SAFETY: plain anonymous reservation; no existing mapping is clobbered
    // because the kernel chooses the address.
    let r = unsafe {
        mmap(
            std::ptr::null_mut(),
            reserve,
            PROT_NONE,
            MAP_PRIVATE | MAP_ANONYMOUS,
            -1,
            0,
        )
    };
    if r == MAP_FAILED {
        return Err(MapError::Os {
            call: "mmap",
            errno: errno(),
        });
    }
    let addr = r as usize;
    let aligned = (addr + CHUNK_SIZE - 1) & !(CHUNK_SIZE - 1);
    // SAFETY: [aligned, aligned+len) lies inside our fresh reservation, so
    // MAP_FIXED replaces only address space we own.
    let m = unsafe {
        mmap(
            aligned as *mut _,
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED | MAP_FIXED,
            fd,
            0,
        )
    };
    if m == MAP_FAILED {
        let e = errno();
        // SAFETY: releasing our own reservation.
        unsafe { munmap(r, reserve) };
        return Err(MapError::Os {
            call: "mmap",
            errno: e,
        });
    }
    // SAFETY: trimming leading/trailing slack of our own reservation.
    unsafe {
        if aligned > addr {
            munmap(addr as *mut _, aligned - addr);
        }
        let end = aligned + len;
        let reserve_end = addr + reserve;
        if reserve_end > end {
            munmap(end as *mut _, reserve_end - end);
        }
    }
    Ok(aligned as *mut u8)
}

/// Probes which OS backend (if any) works here, caching the result.
///
/// The probe performs a real round trip — create a tiny object, map it,
/// write and read a byte, tear it down — because environments exist where
/// the calls link but are denied (seccomp sandboxes, read-only `/dev/shm`).
#[cfg(all(target_os = "linux", not(miri)))]
pub fn probe_os_backend() -> Option<OsBackend> {
    static PROBE: OnceLock<Option<OsBackend>> = OnceLock::new();
    *PROBE.get_or_init(|| {
        for backend in [OsBackend::Memfd, OsBackend::ShmOpen] {
            let name = format!("probe.{}", std::process::id());
            if let Ok(m) = OsMapping::create(&name, CHUNK_SIZE, backend) {
                // SAFETY: we own the fresh zero-filled mapping.
                let ok = unsafe {
                    m.base().write_volatile(0xA5);
                    m.base().read_volatile() == 0xA5
                };
                if ok {
                    return Some(backend);
                }
            }
        }
        None
    })
}

/// Non-Linux / Miri stub: no OS backing (Miri has no shared-memory shims).
#[cfg(any(not(target_os = "linux"), miri))]
pub fn probe_os_backend() -> Option<OsBackend> {
    None
}

/// Non-Linux / Miri stub of the mapping type: every operation reports
/// [`MapError::Unsupported`], so the heap backing is the only one usable.
#[cfg(any(not(target_os = "linux"), miri))]
pub(crate) struct OsMapping;

#[cfg(any(not(target_os = "linux"), miri))]
impl OsMapping {
    pub(crate) fn base(&self) -> *mut u8 {
        unreachable!("OsMapping cannot be constructed off Linux")
    }

    pub(crate) fn len(&self) -> usize {
        unreachable!("OsMapping cannot be constructed off Linux")
    }

    pub(crate) fn backend(&self) -> OsBackend {
        unreachable!("OsMapping cannot be constructed off Linux")
    }

    pub(crate) fn create(
        _name: &str,
        _len: usize,
        _backend: OsBackend,
    ) -> Result<OsMapping, MapError> {
        Err(MapError::Unsupported)
    }

    pub(crate) fn publish(&self) -> Result<(), MapError> {
        Err(MapError::Unsupported)
    }

    pub(crate) fn attach(_name: &str) -> Result<OsMapping, MapError> {
        Err(MapError::Unsupported)
    }
}

/// Whether an OS-shared backing (memfd or shm_open) is available, i.e.
/// whether [`crate::ShmSegment::create_named`] /
/// [`crate::ShmSegment::attach_named`] can work in this environment.
pub fn os_backing_available() -> bool {
    probe_os_backend().is_some()
}

#[cfg(all(test, target_os = "linux", not(miri)))]
mod tests {
    use super::*;

    #[test]
    fn probe_is_stable() {
        assert_eq!(probe_os_backend(), probe_os_backend());
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("demo-seg_1.0"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("slash/y"));
        assert!(!valid_name(&"x".repeat(129)));
    }

    #[test]
    fn mapping_roundtrip_is_shared_and_aligned() {
        let Some(backend) = probe_os_backend() else {
            eprintln!("skipping: no OS backing available");
            return;
        };
        let name = format!("os-test-{}", std::process::id());
        let m = OsMapping::create(&name, 2 * CHUNK_SIZE, backend).unwrap();
        assert_eq!(m.base() as usize % CHUNK_SIZE, 0, "chunk-aligned base");
        m.publish().unwrap();
        // A second mapping through the published name sees the same bytes.
        // SAFETY: offsets 100/200 are in-bounds of the two-chunk mapping,
        // which outlives every access below.
        unsafe { m.base().add(100).write_volatile(0x5C) };
        let m2 = OsMapping::attach(&name).unwrap();
        assert_eq!(m2.len(), 2 * CHUNK_SIZE);
        // SAFETY: same in-bounds offset, read through the second mapping.
        assert_eq!(unsafe { m2.base().add(100).read_volatile() }, 0x5C);
        // SAFETY: in-bounds; `m2` is alive for the write and read below.
        unsafe { m2.base().add(200).write_volatile(0x7D) };
        // SAFETY: in-bounds read back through the original mapping.
        assert_eq!(unsafe { m.base().add(200).read_volatile() }, 0x7D);
        // Publishing the same name again while alive is rejected.
        let dup = OsMapping::create(&name, CHUNK_SIZE, backend).unwrap();
        assert_eq!(dup.publish(), Err(MapError::AlreadyExists));
        drop(m2);
        drop(m);
        // Creator gone: the link file is removed and attach fails cleanly.
        match OsMapping::attach(&name) {
            Err(MapError::NotFound) => {}
            Err(other) => panic!("expected NotFound, got {other:?}"),
            Ok(_) => panic!("attach after teardown must fail"),
        }
        drop(dup);
    }

    #[test]
    fn liveness_probe() {
        assert!(process_alive(std::process::id()));
        assert!(!process_alive(0));
    }
}
