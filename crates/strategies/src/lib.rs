//! # strategies: the six node-sharing strategies and the paper's scoring
//!
//! §5.2 compares six ways of executing a set of applications on one node:
//!
//! 1. **Exclusive** — one after the other, each owning the whole node.
//! 2. **Oversubscription (busy)** — all at once on all cores, idle workers
//!    busy-waiting (the default of some OpenMP runtimes).
//! 3. **Oversubscription (idle)** — all at once, idle workers blocked on a
//!    futex (Nanos6's default).
//! 4. **Static co-location** — the node statically split into equal slices.
//! 5. **Dynamic co-location (DLB)** — equal slices plus LeWI-style core
//!    lending.
//! 6. **Co-execution (nOS-V)** — one shared runtime, node-wide scheduling.
//!
//! The metric is the paper's *performance score*
//! `p_s(x, y) = min_σ t_σ(x, y) / t_s(x, y)`: how close strategy `s` gets
//! to the best strategy for that combination (1.0 = best). This module
//! also provides combination enumeration (pairwise with repetition — the
//! lower triangle of Fig. 6 including the diagonal — and three-wise
//! without repetition, Fig. 8) and box-plot summary statistics (Figs. 7–8).

#![warn(missing_docs)]

use simnode::{
    AffinityMode, AppModel, IdlePolicy, NodeSpec, QuantumPolicy, RuntimeMode, SchedPolicy,
    SimOptions, SimResult, SimSpec, TraceSink,
};

/// The six strategies of §5.2, in the paper's figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// One application after the other, each exclusive.
    Exclusive,
    /// Simultaneous on all cores; idle workers busy-wait.
    OversubscriptionBusy,
    /// Simultaneous on all cores; idle workers block.
    OversubscriptionIdle,
    /// Static equal partitions.
    Colocation,
    /// Dynamic co-location via core lending (DLB / LeWI).
    Dlb,
    /// Co-execution through system-wide task scheduling (nOS-V).
    Nosv,
}

impl Strategy {
    /// All strategies in figure order.
    pub fn all() -> [Strategy; 6] {
        [
            Strategy::Exclusive,
            Strategy::OversubscriptionBusy,
            Strategy::OversubscriptionIdle,
            Strategy::Colocation,
            Strategy::Dlb,
            Strategy::Nosv,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Exclusive => "Exclusive Execution",
            Strategy::OversubscriptionBusy => "Oversubscription Busy",
            Strategy::OversubscriptionIdle => "Oversubscription Idle",
            Strategy::Colocation => "Co-location",
            Strategy::Dlb => "DLB",
            Strategy::Nosv => "nOS-V",
        }
    }
}

/// Knobs shared by all strategy runs.
#[derive(Debug, Clone)]
pub struct StrategyConfig {
    /// nOS-V process quantum (paper: 20 ms for all experiments).
    pub quantum_ns: u64,
    /// nOS-V task affinity mode (Fig. 9's "nOS-V + NUMA affinity" uses
    /// [`AffinityMode::Strict`]; everything else ignores homes).
    pub affinity: AffinityMode,
    /// Simulator options (seed, jitter, tracing).
    pub sim: SimOptions,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig {
            quantum_ns: 20_000_000,
            affinity: AffinityMode::Ignore,
            sim: SimOptions::default(),
        }
    }
}

/// Runs `apps` under `strategy` on `node`; returns the group makespan in
/// nanoseconds ("elapsed time from the start of the application group's
/// execution to when they all finished", §5.2) and, for non-exclusive
/// strategies, the final [`SimResult`].
///
/// The nOS-V strategy schedules through the canonical [`QuantumPolicy`]
/// built from `cfg.quantum_ns`; [`run_strategy_with_policy`] accepts any
/// [`SchedPolicy`] instead.
pub fn run_strategy(
    node: &NodeSpec,
    apps: &[AppModel],
    strategy: Strategy,
    cfg: &StrategyConfig,
) -> (u64, Option<SimResult>) {
    run_strategy_with_policy(
        node,
        apps,
        strategy,
        cfg,
        &QuantumPolicy::new(cfg.quantum_ns),
    )
}

/// [`run_strategy`] with an explicit [`SchedPolicy`] driving the nOS-V
/// strategy's process selection — the same trait object kind the live
/// `nosv` runtime consults, so a custom policy can be scored across the
/// whole strategy comparison without touching the simulator.
pub fn run_strategy_with_policy(
    node: &NodeSpec,
    apps: &[AppModel],
    strategy: Strategy,
    cfg: &StrategyConfig,
    policy: &dyn SchedPolicy,
) -> (u64, Option<SimResult>) {
    run_strategy_observed(node, apps, strategy, cfg, policy, None)
}

/// The fully-general strategy runner: custom [`SchedPolicy`] *and* an
/// optional [`TraceSink`] observing every simulation the strategy performs
/// (the exclusive strategy runs one simulation per application; the others
/// run exactly one). The sink receives the same `ObsEvent` schema the live
/// `nosv` runtime emits, so one sink implementation can compare a scored
/// strategy against a live run event-for-event.
pub fn run_strategy_observed(
    node: &NodeSpec,
    apps: &[AppModel],
    strategy: Strategy,
    cfg: &StrategyConfig,
    policy: &dyn SchedPolicy,
    sink: Option<&dyn TraceSink>,
) -> (u64, Option<SimResult>) {
    let sim = |apps: &[AppModel], mode: &RuntimeMode| {
        let mut spec = SimSpec::new(node, apps, mode)
            .opts(cfg.sim.clone())
            .policy(policy);
        if let Some(sink) = sink {
            spec = spec.sink(sink);
        }
        spec.run()
    };
    match strategy {
        Strategy::Exclusive => {
            // Sequential: each application exclusively on the whole node.
            let mut total = 0u64;
            for app in apps {
                let r = sim(
                    std::slice::from_ref(app),
                    &RuntimeMode::PerApp {
                        assignments: vec![node.all_cores()],
                        idle: IdlePolicy::Futex,
                        dlb: false,
                    },
                );
                total += r.makespan_ns;
            }
            (total, None)
        }
        Strategy::OversubscriptionBusy | Strategy::OversubscriptionIdle => {
            let idle = if strategy == Strategy::OversubscriptionBusy {
                IdlePolicy::Busy
            } else {
                IdlePolicy::Futex
            };
            let r = sim(
                apps,
                &RuntimeMode::PerApp {
                    assignments: vec![node.all_cores(); apps.len()],
                    idle,
                    dlb: false,
                },
            );
            (r.makespan_ns, Some(r))
        }
        Strategy::Colocation => {
            let r = sim(
                apps,
                &RuntimeMode::PerApp {
                    assignments: node.equal_partitions(apps.len()),
                    idle: IdlePolicy::Futex,
                    dlb: false,
                },
            );
            (r.makespan_ns, Some(r))
        }
        Strategy::Dlb => {
            let r = sim(
                apps,
                &RuntimeMode::PerApp {
                    assignments: node.equal_partitions(apps.len()),
                    idle: IdlePolicy::Futex,
                    dlb: true,
                },
            );
            (r.makespan_ns, Some(r))
        }
        Strategy::Nosv => {
            let r = sim(
                apps,
                &RuntimeMode::Nosv {
                    quantum_ns: cfg.quantum_ns,
                    affinity: cfg.affinity,
                },
            );
            (r.makespan_ns, Some(r))
        }
    }
}

/// Makespans of one combination under every strategy (figure order).
#[derive(Debug, Clone)]
pub struct ComboOutcome {
    /// Indices of the combined applications (into the benchmark list).
    pub combo: Vec<usize>,
    /// Makespan per strategy, ns, in [`Strategy::all`] order.
    pub makespans: [u64; 6],
}

impl ComboOutcome {
    /// The paper's performance score of each strategy for this combination:
    /// best makespan / strategy makespan (1.0 = best).
    pub fn scores(&self) -> [f64; 6] {
        let best = *self.makespans.iter().min().expect("six entries") as f64;
        let mut out = [0.0; 6];
        for (i, &m) in self.makespans.iter().enumerate() {
            out[i] = best / m as f64;
        }
        out
    }

    /// Speedup of strategy `s` over exclusive execution.
    pub fn speedup_vs_exclusive(&self, s: Strategy) -> f64 {
        let idx = Strategy::all().iter().position(|&x| x == s).expect("known");
        self.makespans[0] as f64 / self.makespans[idx] as f64
    }
}

/// Runs all six strategies on one combination of applications.
pub fn evaluate_combo(
    node: &NodeSpec,
    apps: &[AppModel],
    combo: Vec<usize>,
    cfg: &StrategyConfig,
) -> ComboOutcome {
    let mut makespans = [0u64; 6];
    for (i, s) in Strategy::all().into_iter().enumerate() {
        makespans[i] = run_strategy(node, apps, s, cfg).0;
    }
    ComboOutcome { combo, makespans }
}

/// All pairwise combinations with repetition of `n` items — the cells of
/// the Fig. 6 heatmaps (lower triangle including the diagonal).
pub fn pairwise_combos(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in a..n {
            out.push(vec![a, b]);
        }
    }
    out
}

/// All three-wise combinations *without* repetition of `n` items — §5.2:
/// "we then extended the evaluation to co-schedule all three-wise
/// combinations ... the resulting 35 possible combinations".
pub fn threewise_combos(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                out.push(vec![a, b, c]);
            }
        }
    }
    out
}

/// Five-number summary for the box plots of Figs. 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary of `values` (must be non-empty).
    pub fn of(values: &[f64]) -> BoxStats {
        assert!(!values.is_empty(), "empty sample");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        BoxStats {
            min: v[0],
            q1: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q3: quantile(&v, 0.75),
            max: *v.last().expect("non-empty"),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile of a sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{benchmark, Benchmark};

    fn cfg() -> StrategyConfig {
        StrategyConfig {
            sim: SimOptions {
                jitter: 0.02,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn combo_enumeration_counts_match_paper() {
        assert_eq!(pairwise_combos(7).len(), 28); // Fig. 6 cells
        assert_eq!(threewise_combos(7).len(), 35); // §5.2 "35 combinations"
                                                   // Sanity on membership.
        assert!(pairwise_combos(7).contains(&vec![3, 3]));
        assert!(!threewise_combos(7).iter().any(|c| c[0] == c[1]));
    }

    #[test]
    fn box_stats_five_numbers() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn scores_are_normalized_to_best() {
        let o = ComboOutcome {
            combo: vec![0, 1],
            makespans: [200, 400, 300, 100, 150, 100],
        };
        let s = o.scores();
        assert_eq!(s[3], 1.0);
        assert_eq!(s[5], 1.0);
        assert_eq!(s[0], 0.5);
        assert!((o.speedup_vs_exclusive(Strategy::Nosv) - 2.0).abs() < 1e-12);
    }

    /// The headline qualitative result on one representative pair:
    /// HPCCG (serial comm phases) + N-Body (compute-bound). nOS-V must beat
    /// exclusive execution and be at least competitive with every other
    /// strategy (§5.2 reports its maximum speedup, 1.33x, on this pair).
    #[test]
    fn hpccg_nbody_shape() {
        let node = NodeSpec::amd_rome();
        let apps = vec![
            benchmark(Benchmark::Hpccg, 0.04),
            benchmark(Benchmark::Nbody, 0.04),
        ];
        let outcome = evaluate_combo(&node, &apps, vec![0, 1], &cfg());
        let scores = outcome.scores();
        let nosv = scores[5];
        let exclusive = scores[0];
        assert!(
            nosv > exclusive,
            "nOS-V must beat exclusive: {scores:?} ({:?})",
            outcome.makespans
        );
        let speedup = outcome.speedup_vs_exclusive(Strategy::Nosv);
        // At the tiny test scale the serial fraction shrinks relative to
        // the full-size workload, so the band is wider than the paper's
        // full-scale 1.33x (the fig6 harness at scale >= 0.1 lands 1.2-1.4).
        assert!(
            (1.05..1.6).contains(&speedup),
            "speedup {speedup} out of the expected band (paper: 1.33x)"
        );
        assert!(nosv > 0.95, "nOS-V should be at or near best: {scores:?}");
    }

    /// dot-product + Heat: both memory-bound; §5.2 explains why *every*
    /// strategy converges to the same makespan (bandwidth is the only
    /// bottleneck) and nOS-V gains ~nothing over exclusive.
    #[test]
    fn dot_heat_bandwidth_bound_shape() {
        let node = NodeSpec::amd_rome();
        let apps = vec![
            benchmark(Benchmark::DotProduct, 0.04),
            benchmark(Benchmark::Heat, 0.04),
        ];
        let outcome = evaluate_combo(&node, &apps, vec![0, 1], &cfg());
        let speedup = outcome.speedup_vs_exclusive(Strategy::Nosv);
        assert!(
            (0.9..1.15).contains(&speedup),
            "memory-bound pair should gain ~nothing: {speedup} ({:?})",
            outcome.makespans
        );
    }

    /// Oversubscription-busy must be the clearly worst strategy on a pair
    /// with fine-grained phases (Heat) — the paper's pathological cells.
    #[test]
    fn busy_oversubscription_pathology() {
        let node = NodeSpec::amd_rome();
        let apps = vec![
            benchmark(Benchmark::Heat, 0.03),
            benchmark(Benchmark::Nbody, 0.03),
        ];
        let outcome = evaluate_combo(&node, &apps, vec![0, 1], &cfg());
        let scores = outcome.scores();
        let busy = scores[1];
        let idle = scores[2];
        let nosv = scores[5];
        // Robust shape claims (the magnitude of the busy collapse is
        // model-limited; see EXPERIMENTS.md): nOS-V is at or within jitter
        // noise (1%) of the best strategy, and busy waiting is never
        // better than futex idling on this pair.
        assert!(
            nosv >= scores.iter().cloned().fold(0.0, f64::max) - 0.01,
            "nOS-V must be at or near the best strategy: {scores:?}"
        );
        assert!(
            busy <= idle + 0.015,
            "busy-waiting must not beat futex idling: {scores:?}"
        );
        assert!(
            busy < nosv,
            "busy oversubscription must lose to co-execution: {scores:?}"
        );
    }
}
