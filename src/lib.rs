//! # nosv-repro: umbrella facade
//!
//! One dependency for the whole reproduction of *"nOS-V: Co-Executing HPC
//! Applications Using System-Wide Task Scheduling"*: the backend-agnostic
//! scheduling core ([`nosv_core`], driven by both backends), the live
//! runtime ([`nosv`]), its substrate crates ([`nosv_shmem`],
//! [`nosv_sync`]), the mini Nanos6-style data-flow runtime ([`nanos`]),
//! the discrete-event node simulator ([`simnode`]), the evaluation
//! pipeline ([`strategies`], [`mpisim`]) and the benchmark workloads
//! ([`workloads`]).
//!
//! The working set is curated in [`prelude`]; the individual crates remain
//! reachable under their own names for everything else.
//!
//! ## Quick start
//!
//! ```
//! use nosv_repro::prelude::*;
//!
//! # fn main() -> Result<(), NosvError> {
//! // Live runtime: two applications co-execute over one scheduler.
//! let rt = Runtime::builder().cpus(2).build()?;
//! let alpha = rt.attach("alpha")?;
//! let beta = rt.attach("beta")?;
//! let tasks: Vec<TaskHandle> = [&alpha, &beta]
//!     .iter()
//!     .map(|app| app.build_task(TaskBuilder::new().run(|_| {})))
//!     .collect::<Result<_, _>>()?;
//! for t in &tasks {
//!     t.submit()?;
//!     t.wait()?;
//! }
//! tasks.into_iter().for_each(TaskHandle::destroy);
//! drop((alpha, beta));
//! rt.shutdown();
//!
//! // Simulated node: the same policy code drives the co-execution model.
//! let node = NodeSpec::tiny(1, 2);
//! let apps = vec![AppModel::new(
//!     "demo",
//!     vec![Phase::uniform(4, TaskModel::compute(1_000_000))],
//! )];
//! let result = run_simulation(
//!     &node,
//!     &apps,
//!     &RuntimeMode::Nosv {
//!         quantum_ns: nosv::DEFAULT_QUANTUM_NS,
//!         affinity: AffinityMode::Ignore,
//!     },
//!     &SimOptions::default(),
//! );
//! assert!(result.makespan_ns > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use mpisim;
pub use nanos;
pub use nosv;
pub use nosv_core;
pub use nosv_shmem;
pub use nosv_sync;
pub use simnode;
pub use strategies;
pub use workloads;

/// The curated working set across the whole reproduction: the live
/// runtime's [`nosv::prelude`], the simulator's entry points, the strategy
/// pipeline, and the data-flow runtime.
pub mod prelude {
    pub use nosv::prelude::*;

    // The unified observability surface (shared by every backend): the
    // renderers over raw event slices; the sinks themselves come through
    // `nosv::prelude`.
    pub use nosv::obs::{ascii_timeline, chrome_trace_json, exec_segments, ExecSegment};

    pub use simnode::{
        run_simulation, run_simulation_with_policy, AffinityMode, AppModel, CoreRange, IdlePolicy,
        NodeSpec, Phase, RuntimeMode, SimOptions, SimResult, SimSpec, TaskModel,
    };

    pub use strategies::{
        evaluate_combo, run_strategy, run_strategy_observed, run_strategy_with_policy, Strategy,
        StrategyConfig,
    };

    pub use nanos::{Backend, NanosRuntime, Region};

    pub use workloads::{benchmark, Benchmark};
}
