//! # nosv-repro: umbrella crate
//!
//! Re-exports every crate of the reproduction of *"nOS-V: Co-Executing HPC
//! Applications Using System-Wide Task Scheduling"* so examples and
//! integration tests can use one dependency. See `README.md` for the tour
//! and `DESIGN.md` for the system inventory.

pub use mpisim;
pub use nanos;
pub use nosv;
pub use nosv_shmem;
pub use nosv_sync;
pub use simnode;
pub use strategies;
pub use workloads;
