//! Cross-crate integration tests: the full stack from the shared-memory
//! substrate up through nanos task graphs and the evaluation pipeline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nosv_repro::nanos::{Backend, NanosRuntime};
use nosv_repro::nosv::{MemorySink, ObsKind, Runtime};
use nosv_repro::simnode::{AffinityMode, NodeSpec, RuntimeMode, SimOptions};
use nosv_repro::strategies::{evaluate_combo, Strategy, StrategyConfig};
use nosv_repro::workloads::kernels;
use nosv_repro::workloads::{benchmark, Benchmark};

/// Two nanos applications with *different* task graphs co-execute through
/// one nOS-V runtime and both produce bit-correct results — the end-to-end
/// claim of §4.
#[test]
fn two_nanos_apps_share_one_nosv_runtime() {
    let rt = Runtime::builder().cpus(4).build().expect("valid config");
    let (mm, ch) = std::thread::scope(|s| {
        let mm = s.spawn(|| {
            let nr = NanosRuntime::new(Backend::nosv(rt.attach("matmul").unwrap()));
            let out = kernels::matmul::run(&nr, 3, 8);
            nr.shutdown();
            out
        });
        let ch = s.spawn(|| {
            let nr = NanosRuntime::new(Backend::nosv(rt.attach("cholesky").unwrap()));
            let out = kernels::cholesky::run(&nr, 3, 8);
            nr.shutdown();
            out
        });
        (mm.join().expect("matmul"), ch.join().expect("cholesky"))
    });
    kernels::assert_close(mm.checksum, kernels::matmul::reference(3, 8), 1e-9);
    kernels::assert_close(ch.checksum, kernels::cholesky::reference(3, 8), 1e-9);
    let stats = rt.stats();
    assert_eq!(stats.tasks_executed, mm.tasks + ch.tasks);
    rt.shutdown();
}

/// Every kernel computes identical results on both backends — the paper's
/// "requires no changes to user applications" integration claim.
#[test]
fn all_kernels_agree_across_backends() {
    type K = (&'static str, fn(&NanosRuntime) -> f64);
    let cases: Vec<K> = vec![
        ("matmul", |nr| kernels::matmul::run(nr, 2, 8).checksum),
        ("dot", |nr| kernels::dot::run(nr, 2_000, 4, 2).checksum),
        ("heat", |nr| kernels::heat::run(nr, 24, 12, 3, 2).checksum),
        ("hpccg", |nr| kernels::hpccg::run(nr, 96, 4, 2).checksum),
        ("nbody", |nr| kernels::nbody::run(nr, 48, 4, 2).checksum),
        ("cholesky", |nr| kernels::cholesky::run(nr, 2, 6).checksum),
        ("lulesh", |nr| kernels::lulesh::run(nr, 60, 4, 3).checksum),
    ];
    for (name, f) in cases {
        let standalone = {
            let nr = NanosRuntime::new(Backend::standalone(2));
            let v = f(&nr);
            nr.shutdown();
            v
        };
        let via_nosv = {
            let rt = Runtime::builder().cpus(2).build().expect("valid config");
            let nr = NanosRuntime::new(Backend::nosv(rt.attach(name).unwrap()));
            let v = f(&nr);
            nr.shutdown();
            rt.shutdown();
            v
        };
        kernels::assert_close(standalone, via_nosv, 1e-9);
    }
}

/// A real kernel is observable at both layers of the stack through the
/// unified `nosv::obs` surface: the `nanos` data-flow layer reports task
/// spawns/bodies to its sink while the underlying nOS-V runtime reports
/// the scheduling of those same tasks to its own — one event schema, two
/// vantage points, counts agreeing with the kernel's task count.
#[test]
fn kernel_run_is_observable_at_both_layers() {
    let sched_sink = Arc::new(MemorySink::new());
    let flow_sink = Arc::new(MemorySink::new());
    let rt = Runtime::builder()
        .cpus(2)
        .sink(sched_sink.clone())
        .build()
        .expect("valid config");
    let nr = NanosRuntime::with_sink(
        Backend::nosv(rt.attach("observed").unwrap()),
        flow_sink.clone(),
    );
    let out = kernels::matmul::run(&nr, 2, 8);
    nr.shutdown();
    rt.shutdown();

    let starts = |events: &[nosv_repro::nosv::ObsEvent]| {
        events
            .iter()
            .filter(|e| matches!(e.kind, ObsKind::Start { .. }))
            .count() as u64
    };
    let flow = flow_sink.take_sorted();
    let sched = sched_sink.take_sorted();
    assert_eq!(starts(&flow), out.tasks, "data-flow layer saw every body");
    assert_eq!(starts(&sched), out.tasks, "scheduling layer saw every task");
}

/// The paper's qualitative headline on the evaluation pipeline: nOS-V
/// co-execution never loses to exclusive execution, on a sample of pairs.
#[test]
fn nosv_never_worse_than_exclusive_sampled() {
    let node = NodeSpec::amd_rome();
    let cfg = StrategyConfig {
        sim: SimOptions::default(),
        ..Default::default()
    };
    for (a, b) in [
        (Benchmark::Hpccg, Benchmark::Nbody),
        (Benchmark::Lulesh, Benchmark::Matmul),
        (Benchmark::Cholesky, Benchmark::DotProduct),
    ] {
        let apps = vec![benchmark(a, 0.03), benchmark(b, 0.03)];
        let out = evaluate_combo(&node, &apps, vec![0, 1], &cfg);
        let speedup = out.speedup_vs_exclusive(Strategy::Nosv);
        assert!(
            speedup >= 0.99,
            "{:?}+{:?}: nOS-V lost to exclusive ({speedup})",
            a,
            b
        );
    }
}

/// Many applications (more than cores) attach, run, detach — exercising
/// the registry life cycle and the one-worker-per-core invariant under
/// heavy oversubscription of logical processes.
#[test]
fn many_small_apps_run_to_completion() {
    let rt = Runtime::builder().cpus(2).build().expect("valid config");
    let done = Arc::new(AtomicUsize::new(0));
    for wave in 0..3 {
        let apps: Vec<_> = (0..6)
            .map(|i| rt.attach(&format!("wave{wave}-app{i}")).unwrap())
            .collect();
        let tasks: Vec<_> = apps
            .iter()
            .flat_map(|app| {
                (0..10).map(|_| {
                    let d = Arc::clone(&done);
                    app.spawn(move |_| {
                        d.fetch_add(1, Ordering::Relaxed);
                    })
                })
            })
            .collect();
        for t in &tasks {
            t.wait().unwrap();
        }
        for t in tasks {
            t.destroy();
        }
        // apps drop here: detach all six.
    }
    assert_eq!(done.load(Ordering::Relaxed), 3 * 6 * 10);
    rt.shutdown();
}

/// The simulator and the real runtime share the same policy code: a
/// quantum-expiry decision made by `nosv::policy` drives both. This test
/// pins the policy's observable behaviour through the simulator.
#[test]
fn simulated_quantum_controls_switch_rate() {
    let node = NodeSpec::tiny(1, 4);
    let apps = vec![
        benchmark(Benchmark::Matmul, 0.02),
        benchmark(Benchmark::Nbody, 0.02),
    ];
    let run = |quantum_ns| {
        nosv_repro::simnode::run_simulation(
            &node,
            &apps,
            &RuntimeMode::Nosv {
                quantum_ns,
                affinity: AffinityMode::Ignore,
            },
            &SimOptions::default(),
        )
        .stats
    };
    let short = run(1_000_000);
    let long = run(500_000_000);
    assert!(
        short.quantum_switches > long.quantum_switches,
        "shorter quantum must force more switches: {} vs {}",
        short.quantum_switches,
        long.quantum_switches
    );
}

/// Segment hygiene: a full create/attach/run/detach cycle leaves the
/// shared segment balanced (no leaked descriptors or chunks).
#[test]
fn shared_segment_balances_after_workload() {
    use nosv_repro::nosv_shmem::{SegmentConfig, ShmSegment};
    let seg = ShmSegment::create(SegmentConfig {
        size: 8 * 1024 * 1024,
        max_cpus: 4,
    });
    let before = seg.alloc_stats();
    let offs: Vec<_> = (0..500)
        .map(|i| seg.alloc(64 + (i % 100) * 8, i % 4).expect("space"))
        .collect();
    for (i, off) in offs.into_iter().enumerate() {
        seg.free(off, (i + 1) % 4);
    }
    for cpu in 0..4 {
        seg.drain_cpu_caches(cpu);
    }
    let after = seg.alloc_stats();
    assert_eq!(after.allocated_bytes, 0);
    assert_eq!(after.free_chunks, before.free_chunks);
}
