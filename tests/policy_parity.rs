//! The `SchedPolicy` parity property: the live runtime and the `simnode`
//! discrete-event engine consult the **same** policy trait, and neither
//! backend reimplements or distorts its decisions.
//!
//! A recording wrapper captures every `(inputs, decision)` pair a backend
//! feeds through the trait during a small trace; replaying the recorded
//! inputs through the canonical free-function logic must reproduce every
//! recorded decision exactly. A qualitative agreement check then pins the
//! shared behaviour: under a microscopic quantum both backends observe
//! quantum-expiry switches on a two-application trace, and neither does on
//! a single-application trace.

use std::sync::{Arc, Mutex};

use nosv_repro::nosv::policy::{
    pick_process, CandidateProc, CoreQuantum, Decision, QuantumPolicy, SchedPolicy,
};
use nosv_repro::prelude::*;

/// One recorded policy consultation.
#[derive(Debug, Clone)]
struct Record {
    core: CoreQuantum,
    now_ns: u64,
    candidates: Vec<CandidateProc>,
    rr_before: u64,
    decision: Option<Decision>,
}

/// A [`SchedPolicy`] that records every consultation before delegating to
/// the canonical [`QuantumPolicy`].
struct RecordingPolicy {
    inner: QuantumPolicy,
    log: Arc<Mutex<Vec<Record>>>,
}

impl RecordingPolicy {
    fn new(quantum_ns: u64) -> (RecordingPolicy, Arc<Mutex<Vec<Record>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (
            RecordingPolicy {
                inner: QuantumPolicy::new(quantum_ns),
                log: Arc::clone(&log),
            },
            log,
        )
    }
}

impl SchedPolicy for RecordingPolicy {
    fn quantum_ns(&self) -> u64 {
        self.inner.quantum_ns()
    }

    fn pick_process(
        &self,
        core: &CoreQuantum,
        now_ns: u64,
        candidates: &[CandidateProc],
        rr_cursor: &mut u64,
    ) -> Option<Decision> {
        let rr_before = *rr_cursor;
        let decision = self.inner.pick_process(core, now_ns, candidates, rr_cursor);
        self.log.lock().unwrap().push(Record {
            core: *core,
            now_ns,
            candidates: candidates.to_vec(),
            rr_before,
            decision,
        });
        decision
    }
}

/// Replays every recorded consultation through the free-function logic and
/// asserts the backend neither altered inputs nor decisions.
fn assert_replay_matches(records: &[Record], quantum_ns: u64, backend: &str) {
    assert!(
        !records.is_empty(),
        "{backend}: the backend never consulted the policy"
    );
    for (i, r) in records.iter().enumerate() {
        let mut rr = r.rr_before;
        let replayed = pick_process(&r.core, quantum_ns, r.now_ns, &r.candidates, &mut rr);
        assert_eq!(
            replayed, r.decision,
            "{backend}: consultation {i} diverged from the canonical policy"
        );
        if let Some(d) = r.decision {
            assert!(
                r.candidates.iter().any(|c| c.pid == d.pid),
                "{backend}: consultation {i} chose a non-candidate"
            );
        }
    }
}

fn quantum_switches(records: &[Record]) -> usize {
    records
        .iter()
        .filter(|r| r.decision.is_some_and(|d| d.quantum_expired))
        .count()
}

const TINY_QUANTUM_NS: u64 = 50_000;

/// Drives the live runtime with a recording policy: two busy processes on
/// one core, each task spinning past the quantum.
fn live_trace(apps: usize, tasks_per_app: usize) -> Vec<Record> {
    let (policy, log) = RecordingPolicy::new(TINY_QUANTUM_NS);
    let rt = Runtime::builder()
        .cpus(1)
        .policy(policy)
        .build()
        .expect("valid");
    let contexts: Vec<_> = (0..apps)
        .map(|i| rt.attach(&format!("app{i}")).expect("attach"))
        .collect();
    let mut handles = Vec::new();
    for app in &contexts {
        for _ in 0..tasks_per_app {
            let t = app.create_task(|_| {
                let t0 = std::time::Instant::now();
                while t0.elapsed().as_micros() < 60 {
                    std::hint::spin_loop();
                }
            });
            t.submit().expect("submit");
            handles.push(t);
        }
    }
    for t in &handles {
        t.wait().unwrap();
    }
    for t in handles {
        t.destroy();
    }
    drop(contexts);
    rt.shutdown();
    let records = log.lock().unwrap().clone();
    records
}

/// Drives the simulator with a recording policy over an equivalent trace.
fn sim_trace(apps: usize, tasks_per_app: usize) -> Vec<Record> {
    let (policy, log) = RecordingPolicy::new(TINY_QUANTUM_NS);
    let node = NodeSpec::tiny(1, 1);
    let models: Vec<AppModel> = (0..apps)
        .map(|i| {
            AppModel::new(
                format!("app{i}"),
                vec![Phase::uniform(tasks_per_app, TaskModel::compute(60_000))],
            )
        })
        .collect();
    run_simulation_with_policy(
        &node,
        &models,
        &RuntimeMode::Nosv {
            quantum_ns: TINY_QUANTUM_NS,
            affinity: AffinityMode::Ignore,
        },
        &SimOptions {
            jitter: 0.0,
            ..Default::default()
        },
        &policy,
    );
    let records = log.lock().unwrap().clone();
    records
}

#[test]
fn live_runtime_faithfully_applies_the_shared_policy() {
    let records = live_trace(2, 100);
    assert_replay_matches(&records, TINY_QUANTUM_NS, "live");
}

#[test]
fn simnode_faithfully_applies_the_shared_policy() {
    let records = sim_trace(2, 100);
    assert_replay_matches(&records, TINY_QUANTUM_NS, "simnode");
}

#[test]
fn backends_agree_on_quantum_behaviour_of_a_small_trace() {
    // Two busy applications, microscopic quantum: both backends must
    // observe quantum-expiry switches.
    let live = live_trace(2, 100);
    let sim = sim_trace(2, 100);
    assert!(
        quantum_switches(&live) > 0,
        "live runtime saw no quantum switches"
    );
    assert!(
        quantum_switches(&sim) > 0,
        "simulator saw no quantum switches"
    );

    // One application: a quantum switch is impossible in either backend
    // (switching to yourself is not a switch).
    let live_solo = live_trace(1, 50);
    let sim_solo = sim_trace(1, 50);
    assert_eq!(quantum_switches(&live_solo), 0, "live solo trace switched");
    assert_eq!(quantum_switches(&sim_solo), 0, "sim solo trace switched");
}
