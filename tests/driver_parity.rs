//! The driver-parity property of the `nosv-core` extraction: one seeded
//! random op sequence (submit / batch-submit / pop / steal /
//! quantum-expiry / yield / lend / unregister) is fed through the
//! backend-agnostic scheduling core via **both** drivers —
//!
//! * the *live-scheduler driver*: the real `nosv::Scheduler` (per-shard
//!   delegation locks, lock-free per-producer submission lanes, intrusive
//!   shared-segment queues, cross-shard stealing) exposed through
//!   `nosv::testing::LiveDriver`, and
//! * the *sim driver*: `nosv_core::ShardedCore` over the heap store the
//!   `simnode` engine uses,
//!
//! and the two decision streams must be **byte-identical**: every pop
//! returns the same task id, pid, steal flag and quantum-switch flag;
//! every unregister resolves busy/ok identically; every lending choice
//! picks the same borrower. `policy_parity` proves the backends share the
//! policy; this proves they share the *entire* scheduling state machine —
//! including the shard routing (placed tasks to owner shards,
//! unconstrained tasks sticky to their submitter: `submitter % shards`,
//! no shared cursor) and the cross-shard steal rotation, fuzzed over
//! `sched_shards ∈ {1, 2, 4}`, with batch submissions exercising the
//! reserve-N lane push and `SchedCore::enqueue_batch` against the sim's
//! `route_batch`.

use std::collections::HashMap;

use nosv_repro::nosv::testing::LiveDriver;
use nosv_repro::nosv_core::lend::choose_borrower_sharded;
use nosv_repro::nosv_core::{
    Affinity, HeapStore, PickSource, QuantumPolicy, ShardMap, ShardedCore,
};
use nosv_repro::nosv_sync::SplitMix64;

/// What one pop decided, as both drivers must report it.
type PopRec = Option<(u64, u64, bool, bool)>; // (id, pid, stolen, quantum)

/// The op surface both drivers expose to the fuzzer. Every submission
/// carries the submitter tag that drives lane choice and sticky shard
/// routing; the harness uses one tag per process slot (one producer
/// thread per process), which keeps per-slot FIFO meaningful across the
/// live driver's per-lane drains.
trait Driver {
    fn register(&mut self, slot: u32, pid: u64);
    /// `true` = unregistered; `false` = refused (tasks still queued).
    fn unregister(&mut self, slot: u32) -> bool;
    fn set_app_priority(&mut self, slot: u32, priority: i32);
    fn submit(
        &mut self,
        id: u64,
        slot: u32,
        pid: u64,
        priority: i32,
        affinity: Affinity,
        submitter: u64,
    );
    /// One batch: `ids` share slot / priority / affinity and must land in
    /// submission order.
    fn submit_batch(
        &mut self,
        ids: &[u64],
        slot: u32,
        pid: u64,
        priority: i32,
        affinity: Affinity,
        submitter: u64,
    );
    fn pop(&mut self, cpu: usize, now_ns: u64) -> PopRec;
}

impl Driver for LiveDriver {
    fn register(&mut self, slot: u32, pid: u64) {
        LiveDriver::register(self, slot, pid);
    }

    fn unregister(&mut self, slot: u32) -> bool {
        LiveDriver::unregister(self, slot).is_ok()
    }

    fn set_app_priority(&mut self, slot: u32, priority: i32) {
        LiveDriver::set_app_priority(self, slot, priority);
    }

    fn submit(
        &mut self,
        id: u64,
        slot: u32,
        pid: u64,
        priority: i32,
        affinity: Affinity,
        submitter: u64,
    ) {
        LiveDriver::submit(self, id, slot, pid, priority, affinity, submitter);
    }

    fn submit_batch(
        &mut self,
        ids: &[u64],
        slot: u32,
        pid: u64,
        priority: i32,
        affinity: Affinity,
        submitter: u64,
    ) {
        LiveDriver::submit_batch(self, ids, slot, pid, priority, affinity, submitter);
    }

    fn pop(&mut self, cpu: usize, now_ns: u64) -> PopRec {
        LiveDriver::pop(self, cpu, now_ns).map(|o| (o.id, o.pid, o.stolen, o.quantum_expired))
    }
}

/// The simulator-side driver: the same `ShardedCore` + heap store pairing
/// `simnode`'s engine runs, minus the event loop.
struct SimDriver {
    core: ShardedCore,
    store: HeapStore<u64>,
    policy: QuantumPolicy,
}

impl SimDriver {
    fn new(
        cpus: usize,
        cpus_per_numa: usize,
        quantum_ns: u64,
        procs: usize,
        shards: usize,
    ) -> SimDriver {
        let core = ShardedCore::new(cpus, cpus_per_numa, procs, shards);
        let numa = core.numa_nodes();
        SimDriver {
            store: HeapStore::new(cpus, numa, procs * shards),
            core,
            policy: QuantumPolicy::new(quantum_ns),
        }
    }
}

impl Driver for SimDriver {
    fn register(&mut self, slot: u32, pid: u64) {
        self.core.register_proc(slot as usize, pid);
    }

    fn unregister(&mut self, slot: u32) -> bool {
        // Mirror of the live semantics: the cores' per-slot ready counts
        // (proc queues in every shard *plus* placed tasks in core/NUMA
        // queues) gate the detach. The live driver drains its submission
        // rings first, which this store never needs (routing is
        // immediate).
        if self.core.proc_ready_count(slot as usize) > 0 {
            return false;
        }
        self.core.unregister_proc(slot as usize);
        true
    }

    fn set_app_priority(&mut self, slot: u32, priority: i32) {
        self.core.set_app_priority(slot as usize, priority);
    }

    fn submit(
        &mut self,
        id: u64,
        slot: u32,
        pid: u64,
        priority: i32,
        affinity: Affinity,
        submitter: u64,
    ) {
        let t = self.store.insert(slot, pid, priority, affinity, id);
        self.core.route(&mut self.store, t, submitter);
    }

    fn submit_batch(
        &mut self,
        ids: &[u64],
        slot: u32,
        pid: u64,
        priority: i32,
        affinity: Affinity,
        submitter: u64,
    ) {
        let tasks: Vec<_> = ids
            .iter()
            .map(|&id| self.store.insert(slot, pid, priority, affinity, id))
            .collect();
        self.core.route_batch(&mut self.store, &tasks, submitter);
    }

    fn pop(&mut self, cpu: usize, now_ns: u64) -> PopRec {
        let p = self.core.pick(&mut self.store, &self.policy, cpu, now_ns)?;
        let stolen = p.source == PickSource::Steal;
        let quantum = matches!(
            p.source,
            PickSource::Process {
                quantum_expired: true
            }
        );
        let pid = p.pid;
        let id = self.store.remove(p.task);
        Some((id, pid, stolen, quantum))
    }
}

#[derive(Clone, Copy)]
struct FuzzConfig {
    cpus: usize,
    cpus_per_numa: usize,
    procs: usize,
    quantum_ns: u64,
    /// Live-driver submission ring capacity (per lane). With rings
    /// enabled, drains batch per-slot (preserving per-slot FIFO but not
    /// cross-slot interleaving), so placed tasks are restricted to slot 0
    /// to keep cross-slot arrival order out of the equation — the
    /// documented batching caveat of the live submission path.
    ring_cap: usize,
    /// Scheduler shards, fuzzed over {1, 2, 4} (clamped to the CPU
    /// count). Both drivers shard identically by construction; this test
    /// proves it.
    shards: usize,
}

fn config_for(seed: u64) -> FuzzConfig {
    let mut rng = SplitMix64::new(seed ^ 0xc0a1_e5ce);
    let cpus = 1 + (rng.next_u64() % 6) as usize;
    FuzzConfig {
        cpus,
        cpus_per_numa: [0usize, 2][(rng.next_u64() % 2) as usize],
        procs: 1 + (rng.next_u64() % 3) as usize,
        quantum_ns: 300 + rng.next_u64() % 500,
        ring_cap: [0usize, 4, 256][(seed % 3) as usize],
        shards: [1usize, 2, 4][(seed / 3 % 3) as usize].min(cpus),
    }
}

/// The harness models one producer thread per process: slot `s` always
/// submits as tag `s`, so its unconstrained work sticks to shard
/// `s % shards` and its ring traffic stays in one lane (per-slot FIFO).
fn submitter_for(slot: u32) -> u64 {
    slot as u64
}

/// Runs the seeded op sequence against one driver, recording every
/// decision as a line of text. Op *generation* consumes the same RNG
/// stream for both drivers; where an op depends on earlier outcomes
/// (yield resubmissions, lend candidate counts, re-registration after a
/// successful unregister), it depends only on *recorded decisions* — so
/// the streams stay identical exactly as long as the decisions do.
///
/// The harness additionally tracks, per process slot, how its queued
/// tasks spread over the shards — replicating the shared routing rule
/// ([`ShardMap::route_shard`], a pure function of affinity and submitter
/// tag) — and feeds the per-shard counts to the shard-aware lending
/// decision.
fn decision_stream(driver: &mut impl Driver, seed: u64, cfg: FuzzConfig) -> Vec<String> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();

    let map = ShardMap::new(cfg.cpus, cfg.cpus_per_numa, cfg.shards);

    let mut next_pid = 100u64;
    let mut pid_of: Vec<u64> = Vec::new();
    for slot in 0..cfg.procs {
        pid_of.push(next_pid);
        driver.register(slot as u32, next_pid);
        next_pid += 1;
    }
    let numa_nodes = if cfg.cpus_per_numa == 0 {
        1
    } else {
        cfg.cpus.div_ceil(cfg.cpus_per_numa)
    };

    let mut now = 0u64;
    let mut next_id = 1u64;
    // (slot, pid, priority, affinity) per live task id, for yields.
    let mut attrs: HashMap<u64, (u32, u64, i32, Affinity)> = HashMap::new();
    // Queued tasks per (slot, shard): how "needy" a process is and where
    // its work sits, for shard-aware lending.
    let mut queued: Vec<Vec<usize>> = vec![vec![0; cfg.shards]; cfg.procs];
    // Shard each queued task id currently sits in (updated on yields).
    let mut shard_of: HashMap<u64, usize> = HashMap::new();

    // One bookkeeping point for every submission (fresh, batched or
    // yield): replicate the sticky routing rule both drivers apply.
    fn note_submit(
        map: &ShardMap,
        queued: &mut [Vec<usize>],
        shard_of: &mut HashMap<u64, usize>,
        id: u64,
        slot: u32,
        affinity: Affinity,
    ) {
        let shard = map.route_shard(affinity, submitter_for(slot));
        queued[slot as usize][shard] += 1;
        shard_of.insert(id, shard);
    }

    // Picks (slot, priority, affinity) for a fresh submission. Placed
    // tasks come from slot 0 when rings batch (see FuzzConfig).
    let pick_attrs = |rng: &mut SplitMix64| {
        let slot = (rng.next_u64() % cfg.procs as u64) as u32;
        let prio = (rng.next_u64() % 4) as i32;
        let strict = rng.next_u64().is_multiple_of(2);
        let kind = rng.next_u64() % 3;
        match kind {
            0 => (slot, prio, Affinity::None),
            1 => {
                let s = if cfg.ring_cap == 0 { slot } else { 0 };
                (
                    s,
                    prio,
                    Affinity::Core {
                        index: (rng.next_u64() % cfg.cpus as u64) as usize,
                        strict,
                    },
                )
            }
            _ => {
                let s = if cfg.ring_cap == 0 { slot } else { 0 };
                (
                    s,
                    prio,
                    Affinity::Numa {
                        index: (rng.next_u64() % numa_nodes as u64) as usize,
                        strict,
                    },
                )
            }
        }
    };

    let record_pop = |out: &mut Vec<String>,
                      queued: &mut Vec<Vec<usize>>,
                      shard_of: &mut HashMap<u64, usize>,
                      attrs: &HashMap<u64, (u32, u64, i32, Affinity)>,
                      cpu: usize,
                      now: u64,
                      rec: PopRec|
     -> PopRec {
        match rec {
            Some((id, pid, stolen, quantum)) => {
                let slot = attrs[&id].0 as usize;
                let shard = shard_of.remove(&id).expect("popped task was tracked");
                queued[slot][shard] -= 1;
                out.push(format!(
                    "pop cpu={cpu} now={now} -> id={id} pid={pid} steal={stolen} quantum={quantum}"
                ));
            }
            None => out.push(format!("pop cpu={cpu} now={now} -> none")),
        }
        rec
    };

    for _ in 0..600 {
        now += rng.next_u64() % 300;
        let op = rng.next_u64() % 100;
        if op < 32 {
            // Single submission.
            let (slot, prio, affinity) = pick_attrs(&mut rng);
            let id = next_id;
            next_id += 1;
            let pid = pid_of[slot as usize];
            driver.submit(id, slot, pid, prio, affinity, submitter_for(slot));
            attrs.insert(id, (slot, pid, prio, affinity));
            note_submit(&map, &mut queued, &mut shard_of, id, slot, affinity);
        } else if op < 40 {
            // Batch submission: 2–7 tasks through the reserve-N path
            // (under ring_cap 4 a batch of >4 splits ring/locked).
            let (slot, prio, affinity) = pick_attrs(&mut rng);
            let n = 2 + (rng.next_u64() % 6) as usize;
            let ids: Vec<u64> = (0..n as u64).map(|i| next_id + i).collect();
            next_id += n as u64;
            let pid = pid_of[slot as usize];
            driver.submit_batch(&ids, slot, pid, prio, affinity, submitter_for(slot));
            for &id in &ids {
                attrs.insert(id, (slot, pid, prio, affinity));
                note_submit(&map, &mut queued, &mut shard_of, id, slot, affinity);
            }
        } else if op < 70 {
            let cpu = (rng.next_u64() % cfg.cpus as u64) as usize;
            record_pop(
                &mut out,
                &mut queued,
                &mut shard_of,
                &attrs,
                cpu,
                now,
                driver.pop(cpu, now),
            );
        } else if op < 78 {
            // Quantum expiry: jump time far past the quantum, then pop.
            now += 3 * cfg.quantum_ns;
            let cpu = (rng.next_u64() % cfg.cpus as u64) as usize;
            record_pop(
                &mut out,
                &mut queued,
                &mut shard_of,
                &attrs,
                cpu,
                now,
                driver.pop(cpu, now),
            );
        } else if op < 84 {
            // Yield: pop, then requeue the same task behind its equals.
            let cpu = (rng.next_u64() % cfg.cpus as u64) as usize;
            if let Some((id, ..)) = record_pop(
                &mut out,
                &mut queued,
                &mut shard_of,
                &attrs,
                cpu,
                now,
                driver.pop(cpu, now),
            ) {
                let (slot, pid, prio, aff) = attrs[&id];
                driver.submit(id, slot, pid, prio, aff, submitter_for(slot));
                note_submit(&map, &mut queued, &mut shard_of, id, slot, aff);
                out.push(format!("yield id={id}"));
            }
        } else if op < 90 {
            driver.set_app_priority(
                (rng.next_u64() % cfg.procs as u64) as u32,
                (rng.next_u64() % 3) as i32,
            );
        } else if op < 95 {
            // Lend: the shared shard-aware borrower choice over each
            // driver's view of per-process, per-shard neediness (tracked
            // from its own decisions).
            let exclude = (rng.next_u64() % cfg.procs as u64) as usize;
            let choice = choose_borrower_sharded(
                (0..cfg.procs)
                    .filter(|&s| s != exclude)
                    .map(|s| (s, queued[s].iter().copied())),
            );
            out.push(format!("lend exclude={exclude} -> {choice:?}"));
        } else {
            // Unregister; on success the slot re-registers with a new pid
            // (detach + re-attach of a process).
            let slot = (rng.next_u64() % cfg.procs as u64) as u32;
            if driver.unregister(slot) {
                out.push(format!("unregister slot={slot} -> ok"));
                pid_of[slot as usize] = next_pid;
                driver.register(slot, next_pid);
                next_pid += 1;
            } else {
                out.push(format!("unregister slot={slot} -> busy"));
            }
        }
    }

    // Drain: sweep every CPU until a full round comes back empty, so the
    // terminal decisions (including the last in-shard and cross-shard
    // steals) are compared too.
    now += 10 * cfg.quantum_ns;
    for round in 0.. {
        assert!(round < 10_000, "drain did not converge");
        let mut progress = false;
        for cpu in 0..cfg.cpus {
            now += 50;
            if record_pop(
                &mut out,
                &mut queued,
                &mut shard_of,
                &attrs,
                cpu,
                now,
                driver.pop(cpu, now),
            )
            .is_some()
            {
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    assert_eq!(
        queued.iter().flatten().sum::<usize>(),
        0,
        "tasks left undrained"
    );
    out
}

#[test]
fn live_and_sim_drivers_produce_byte_identical_decision_streams() {
    for seed in 0..18u64 {
        let cfg = config_for(seed);
        let mut live = LiveDriver::new(
            cfg.cpus,
            cfg.cpus_per_numa,
            cfg.quantum_ns,
            cfg.ring_cap,
            cfg.shards,
        );
        assert_eq!(live.shard_count(), cfg.shards);
        let mut sim = SimDriver::new(
            cfg.cpus,
            cfg.cpus_per_numa,
            cfg.quantum_ns,
            cfg.procs,
            cfg.shards,
        );
        let live_stream = decision_stream(&mut live, seed, cfg);
        let sim_stream = decision_stream(&mut sim, seed, cfg);
        assert!(
            !live_stream.is_empty(),
            "seed {seed}: the op sequence recorded no decisions"
        );
        for (i, (l, s)) in live_stream.iter().zip(&sim_stream).enumerate() {
            assert_eq!(
                l, s,
                "seed {seed} (cpus={} numa={} procs={} ring={} shards={}): decision {i} diverged",
                cfg.cpus, cfg.cpus_per_numa, cfg.procs, cfg.ring_cap, cfg.shards
            );
        }
        assert_eq!(
            live_stream.len(),
            sim_stream.len(),
            "seed {seed}: stream lengths diverged"
        );
        assert_eq!(
            live_stream.join("\n").into_bytes(),
            sim_stream.join("\n").into_bytes(),
            "seed {seed}: streams not byte-identical"
        );
    }
}
