//! The observability parity property: the live runtime and the `simnode`
//! discrete-event engine emit the **same** `ObsEvent` schema into the
//! **same** `TraceSink` trait — one `MemorySink` value (the identical
//! implementation, not merely an identical-looking type) receives both
//! streams, and for the same seeded workload the streams are equivalent:
//! the same per-application multiset of task-lifecycle events.
//!
//! This is the trace-level counterpart of `policy_parity.rs`, which proves
//! the backends share scheduling *decisions*; here they share the
//! *observable record* of those decisions.

use std::collections::BTreeMap;
use std::sync::Arc;

use nosv_repro::nosv_sync::SplitMix64;
use nosv_repro::prelude::*;

/// The workload both backends execute: `tasks_per_app[i]` compute tasks of
/// `work_ns` each for application `i`, derived from one seed.
struct Workload {
    tasks_per_app: Vec<usize>,
    work_ns: u64,
}

fn seeded_workload(seed: u64, apps: usize) -> Workload {
    let mut rng = SplitMix64::new(seed);
    Workload {
        tasks_per_app: (0..apps)
            .map(|_| 4 + (rng.next_u64() % 28) as usize)
            .collect(),
        work_ns: 20_000 + rng.next_u64() % 80_000,
    }
}

/// Canonical signature of an event stream: count of each lifecycle kind
/// per application. Applications are ranked by ascending pid, which both
/// backends assign in attach/input order, so rank i = application i.
/// Scheduler-internal kinds (handoff/steal/counter) are backend-timing
/// detail and excluded.
fn signature(events: &[ObsEvent]) -> BTreeMap<(usize, &'static str), usize> {
    let mut pids: Vec<u64> = events
        .iter()
        .filter(|e| e.pid != 0)
        .map(|e| e.pid)
        .collect();
    pids.sort_unstable();
    pids.dedup();
    let mut sig = BTreeMap::new();
    for ev in events {
        let name = match ev.kind {
            ObsKind::Submit => "submit",
            ObsKind::Start { .. } => "start",
            ObsKind::End => "end",
            ObsKind::Pause => "pause",
            ObsKind::Resume => "resume",
            _ => continue,
        };
        let rank = pids
            .binary_search(&ev.pid)
            .expect("lifecycle events carry a pid");
        *sig.entry((rank, name)).or_insert(0) += 1;
    }
    sig
}

/// Runs the workload on the live runtime with a `MemorySink`.
fn live_stream(w: &Workload) -> Vec<ObsEvent> {
    let sink = Arc::new(MemorySink::new());
    let rt = Runtime::builder()
        .cpus(2)
        .sink(sink.clone())
        .build()
        .expect("valid");
    let apps: Vec<_> = (0..w.tasks_per_app.len())
        .map(|i| rt.attach(&format!("app{i}")).expect("attach"))
        .collect();
    let mut handles = Vec::new();
    for (app, &n) in apps.iter().zip(&w.tasks_per_app) {
        for _ in 0..n {
            let work_ns = w.work_ns;
            let t = app.create_task(move |_| {
                let t0 = std::time::Instant::now();
                while (t0.elapsed().as_nanos() as u64) < work_ns {
                    std::hint::spin_loop();
                }
            });
            t.submit().expect("submit");
            handles.push(t);
        }
    }
    for t in &handles {
        t.wait().unwrap();
    }
    for t in handles {
        t.destroy();
    }
    drop(apps);
    rt.shutdown(); // full stream guaranteed delivered
    sink.take_sorted()
}

/// Runs the same workload on the simulator with the same sink type.
fn sim_stream(w: &Workload) -> Vec<ObsEvent> {
    let sink = MemorySink::new();
    let node = NodeSpec::tiny(1, 2);
    let models: Vec<AppModel> = w
        .tasks_per_app
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            AppModel::new(
                format!("app{i}"),
                vec![Phase::uniform(n, TaskModel::compute(w.work_ns))],
            )
        })
        .collect();
    let mode = RuntimeMode::Nosv {
        quantum_ns: nosv_repro::nosv::DEFAULT_QUANTUM_NS,
        affinity: AffinityMode::Ignore,
    };
    SimSpec::new(&node, &models, &mode)
        .opts(SimOptions {
            jitter: 0.0,
            ..Default::default()
        })
        .sink(&sink)
        .run();
    sink.take_sorted()
}

#[test]
fn live_and_sim_emit_equivalent_event_streams() {
    for seed in [0x5eed, 0xc0ffee, 42] {
        let w = seeded_workload(seed, 2);
        let live = live_stream(&w);
        let sim = sim_stream(&w);
        let live_sig = signature(&live);
        let sim_sig = signature(&sim);
        assert_eq!(
            live_sig, sim_sig,
            "seed {seed:#x}: backends disagree on the event stream \
             (workload {:?} x {} ns)",
            w.tasks_per_app, w.work_ns
        );
        // And the signature is what the workload dictates: per app,
        // exactly one submit/start/end per task, no pauses.
        for (rank, &n) in w.tasks_per_app.iter().enumerate() {
            for kind in ["submit", "start", "end"] {
                assert_eq!(
                    live_sig.get(&(rank, kind)).copied().unwrap_or(0),
                    n,
                    "seed {seed:#x}: app {rank} {kind} count"
                );
            }
            assert_eq!(live_sig.get(&(rank, "pause")), None);
        }
    }
}

/// The *same* sink value — not just the same type — can be fed by both
/// backends: run live first, then the simulator, into one `MemorySink`.
#[test]
fn one_sink_value_serves_both_backends() {
    let w = seeded_workload(7, 1);
    let sink = Arc::new(MemorySink::new());

    let rt = Runtime::builder()
        .cpus(1)
        .sink(sink.clone())
        .build()
        .expect("valid");
    let app = rt.attach("shared").expect("attach");
    let t = app.spawn(|_| {});
    t.wait().unwrap();
    t.destroy();
    drop(app);
    rt.shutdown();
    let live_events = sink.len();
    assert!(live_events > 0, "live runtime reached the sink");

    let node = NodeSpec::tiny(1, 1);
    let models = vec![AppModel::new(
        "shared",
        vec![Phase::uniform(
            w.tasks_per_app[0],
            TaskModel::compute(w.work_ns),
        )],
    )];
    let mode = RuntimeMode::Nosv {
        quantum_ns: nosv_repro::nosv::DEFAULT_QUANTUM_NS,
        affinity: AffinityMode::Ignore,
    };
    SimSpec::new(&node, &models, &mode).sink(&*sink).run();
    assert!(
        sink.len() > live_events,
        "the simulator appended to the same sink value"
    );
}
