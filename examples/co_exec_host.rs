//! Cross-OS-process co-execution, host side.
//!
//! Creates a runtime over a *named* OS-shared segment, registers the
//! kernels guests may invoke, spawns the `co_exec_guest` example as a
//! real child OS process, and co-executes its own tasks while the guest
//! submits into the same scheduler. Build both sides first:
//!
//! ```text
//! cargo build --examples
//! cargo run --example co_exec_host
//! ```
//!
//! (The host finds the guest binary next to its own executable.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nosv::prelude::*;

fn main() {
    if !nosv_shmem::os_backing_available() {
        eprintln!("no OS shared-memory backing (memfd/shm) available; skipping demo");
        return;
    }
    let name = format!("nosv-demo-{}", std::process::id());
    let rt = Runtime::builder()
        .cpus(2)
        .segment_name(name.as_str())
        .reclaim_tick(Duration::from_millis(1))
        .build()
        .expect("host runtime");

    // Guests describe tasks as (kernel id, u64 argument); the closures
    // themselves live here, on the host.
    let guest_work = Arc::new(AtomicU64::new(0));
    let acc = Arc::clone(&guest_work);
    rt.register_kernel(1, move |arg| {
        acc.fetch_add(arg, Ordering::Relaxed);
    });

    // Attaching the host application starts the workers — they execute
    // both sides' tasks.
    let app = rt.attach("host-app").expect("attach");

    let guest_bin = std::env::current_exe()
        .expect("current exe")
        .with_file_name("co_exec_guest");
    let mut child = std::process::Command::new(&guest_bin)
        .arg(&name)
        .spawn()
        .unwrap_or_else(|e| {
            panic!(
                "spawn {}: {e} (build with `cargo build --examples`)",
                guest_bin.display()
            )
        });

    // Host work, interleaved with the guest's submissions on the same cores.
    let host_work = Arc::new(AtomicU64::new(0));
    let tasks: Vec<_> = (0..64)
        .map(|_| {
            let acc = Arc::clone(&host_work);
            app.spawn(move |_| {
                acc.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for t in tasks {
        t.wait().unwrap();
        t.destroy();
    }

    let status = child.wait().expect("guest wait");
    assert!(status.success(), "guest failed: {status}");

    let stats = rt.stats();
    println!(
        "host tasks executed : {}",
        host_work.load(Ordering::Relaxed)
    );
    println!(
        "guest kernel sum    : {}",
        guest_work.load(Ordering::Relaxed)
    );
    println!("total tasks executed: {}", stats.tasks_executed);
    println!("crash reclaims      : {}", stats.crash_reclaims);
    drop(app);
    rt.shutdown();
}
