//! The §5.3 NUMA experiment in miniature: distributed HPCCG + N-Body on a
//! simulated dual-socket node, across all five Fig. 9 strategies.
//!
//! Run with: `cargo run --release --example numa_affinity`

use mpisim::{run_all, DistConfig, DistStrategy};
use simnode::SimOptions;

fn main() {
    let cfg = DistConfig {
        nodes: 8,
        scale: 0.3,
        sim: SimOptions::default(),
    };
    println!("distributed HPCCG (2 ranks/node, socket-homed) + N-Body, 8 nodes\n");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>14}",
        "strategy", "HPCCG(s)", "NBody(s)", "total(s)", "HPCCG remote%"
    );
    let outcomes = run_all(&cfg);
    for o in &outcomes {
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>13.1}%",
            o.strategy.name(),
            o.hpccg_ns as f64 / 1e9,
            o.nbody_ns as f64 / 1e9,
            o.makespan_ns as f64 / 1e9,
            o.hpccg_remote_fraction * 100.0
        );
    }
    let exclusive = outcomes
        .iter()
        .find(|o| o.strategy == DistStrategy::Exclusive)
        .expect("present")
        .makespan_ns;
    let affine = outcomes
        .iter()
        .find(|o| o.strategy == DistStrategy::NosvAffinity)
        .expect("present")
        .makespan_ns;
    println!(
        "\nnOS-V + NUMA affinity speedup over exclusive: {:.2}x (paper: 1.21x)",
        exclusive as f64 / affine as f64
    );
}
