//! Co-executing two real task-based applications through one nOS-V runtime.
//!
//! Run with: `cargo run --release --example co_execution`
//!
//! Builds two `nanos` (mini-Nanos6) applications — a blocked Cholesky
//! factorization and a Gauss-Seidel heat solver — and runs them:
//!
//! 1. sequentially, each with its own standalone runtime (exclusive
//!    execution), then
//! 2. simultaneously, both delegating scheduling to one shared nOS-V
//!    runtime (co-execution, §4's adapted-runtime architecture),
//!
//! verifying both orders compute identical results and reporting the
//! makespans and the co-execution statistics.

use std::time::Instant;

use nanos::{Backend, NanosRuntime};
use nosv::prelude::*;
use workloads::kernels::{cholesky, heat};

const CHOLESKY_NB: usize = 8;
const CHOLESKY_BS: usize = 24;
const HEAT_ROWS: usize = 192;
const HEAT_COLS: usize = 96;
const HEAT_BLOCKS: usize = 12;
const HEAT_ITERS: usize = 12;

fn main() -> Result<(), NosvError> {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));

    // --- exclusive execution: one app after the other -----------------
    let t0 = Instant::now();
    let nr = NanosRuntime::new(Backend::standalone(threads));
    let chol_ref = cholesky::run(&nr, CHOLESKY_NB, CHOLESKY_BS);
    nr.shutdown();
    let nr = NanosRuntime::new(Backend::standalone(threads));
    let heat_ref = heat::run(&nr, HEAT_ROWS, HEAT_COLS, HEAT_BLOCKS, HEAT_ITERS);
    nr.shutdown();
    let exclusive = t0.elapsed();

    // --- co-execution: both apps share one nOS-V runtime --------------
    let rt = Runtime::builder()
        .cpus(threads)
        .segment_size(64 * 1024 * 1024)
        .build()?;
    let t0 = Instant::now();
    let (chol_run, heat_run) = std::thread::scope(|s| {
        let chol = s.spawn(|| {
            let app = rt.attach("cholesky").expect("attach cholesky");
            let nr = NanosRuntime::new(Backend::nosv(app));
            let out = cholesky::run(&nr, CHOLESKY_NB, CHOLESKY_BS);
            nr.shutdown();
            out
        });
        let heat = s.spawn(|| {
            let app = rt.attach("heat").expect("attach heat");
            let nr = NanosRuntime::new(Backend::nosv(app));
            let out = heat::run(&nr, HEAT_ROWS, HEAT_COLS, HEAT_BLOCKS, HEAT_ITERS);
            nr.shutdown();
            out
        });
        (chol.join().expect("cholesky"), heat.join().expect("heat"))
    });
    let coexec = t0.elapsed();

    assert!(
        (chol_run.checksum - chol_ref.checksum).abs() < 1e-6,
        "cholesky results differ between modes"
    );
    assert!(
        (heat_run.checksum - heat_ref.checksum).abs() < 1e-6,
        "heat results differ between modes"
    );

    let stats = rt.stats();
    println!(
        "cholesky: {} tasks, checksum {:.6}",
        chol_run.tasks, chol_run.checksum
    );
    println!(
        "heat:     {} tasks, checksum {:.6}",
        heat_run.tasks, heat_run.checksum
    );
    println!("exclusive (sequential) elapsed: {exclusive:?}");
    println!("co-execution elapsed:           {coexec:?}");
    println!(
        "co-execution stats: {} tasks, {} cross-process handoffs, {} delegated fetches",
        stats.tasks_executed, stats.cross_process_handoffs, stats.delegations_served
    );
    println!(
        "(On a single-CPU container the wall-clock gain is limited; the\n\
         point is identical results and the handoff counters proving both\n\
         applications shared one scheduler.)"
    );
    rt.shutdown();
    Ok(())
}
