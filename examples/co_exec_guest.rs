//! Cross-OS-process co-execution, guest side.
//!
//! Joins the named segment the `co_exec_host` example published (the
//! name arrives as `argv[1]`), submits data-described tasks into the
//! host's scheduler, waits for them, and detaches cleanly. Normally
//! spawned *by* the host example rather than run directly.

use std::time::Duration;

use nosv::prelude::*;

fn main() {
    let Some(name) = std::env::args().nth(1) else {
        eprintln!("usage: co_exec_guest <segment-name>");
        eprintln!("(spawned by the co_exec_host example; not usually run by hand)");
        return;
    };
    let guest = Runtime::join(&name).expect("join host segment");
    println!("guest: joined '{name}' as logical pid {}", guest.pid());
    // Kernel 1 sums its argument on the host: 1 + 2 + … + 100 = 5050.
    for i in 1..=100u64 {
        guest.submit(1, i).expect("submit");
    }
    guest
        .wait_idle(Duration::from_secs(30))
        .expect("host never drained our tasks");
    guest.detach().expect("clean detach");
    println!("guest: 100 tasks done, detached");
}
