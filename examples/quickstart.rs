//! Quickstart: two applications co-executing on one nOS-V runtime.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Demonstrates the paper's core API surface (§3.2) through the
//! builder-first, error-first API: a single runtime instance, two attached
//! logical processes, tasks created/submitted from both, priorities,
//! pause/resume, and the runtime statistics showing cross-process core
//! handoffs — the mechanics of co-execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use nosv::prelude::*;

fn main() -> Result<(), NosvError> {
    // One runtime manages all cores; applications share it. A MemorySink
    // collects the runtime's ObsEvent stream (the unified observability
    // API; see `nosv::obs`).
    let sink = Arc::new(MemorySink::new());
    let rt = Runtime::builder().cpus(4).sink(sink.clone()).build()?;

    // Two "applications" attach as logical processes (in the original
    // system these would be separate OS processes mapping the shared
    // memory segment).
    let alpha = rt.attach("alpha")?;
    let beta = rt.attach("beta")?;

    // Submit a burst of tasks from both; the shared scheduler interleaves
    // them over the cores while keeping one runnable worker per core.
    let counter = Arc::new(AtomicUsize::new(0));
    let mut tasks = Vec::new();
    for i in 0..20 {
        for app in [&alpha, &beta] {
            let c = Arc::clone(&counter);
            let t = app.build_task(TaskBuilder::new().priority(i % 3).run(move |ctx| {
                // Tasks always run under their creator's identity.
                let _ = ctx.pid();
                c.fetch_add(1, Ordering::Relaxed);
            }))?;
            t.submit()?;
            tasks.push(t);
        }
    }
    for t in &tasks {
        t.wait().unwrap();
    }
    println!("executed {} tasks", counter.load(Ordering::Relaxed));

    // Pause/resume: a task blocks mid-body (releasing its core!) until it
    // is resubmitted — the nosv_pause/nosv_submit protocol.
    let (tx, rx) = mpsc::channel::<()>();
    let paused = alpha.create_task(move |_| {
        tx.send(()).unwrap();
        nosv::pause(); // core is handed to other work while we sleep
        println!("paused task resumed and finished");
    });
    paused.submit()?;
    rx.recv().unwrap();
    paused.submit()?; // unblock it
    paused.wait().unwrap();
    paused.destroy();

    for t in tasks {
        t.destroy();
    }

    let stats = rt.stats();
    println!(
        "stats: {} executed, {} cross-process handoffs, {} delegated fetches, {} pauses",
        stats.tasks_executed, stats.cross_process_handoffs, stats.delegations_served, stats.pauses
    );
    drop((alpha, beta));
    rt.shutdown(); // delivers every buffered trace event to the sink
    let events = sink.take_sorted();
    println!(
        "trace: {} events ({} task starts)",
        events.len(),
        events
            .iter()
            .filter(|e| matches!(e.kind, ObsKind::Start { .. }))
            .count()
    );
    Ok(())
}
