//! Dumps a Fig. 10-style per-core execution trace of a co-executed run on
//! the simulated dual-socket node, with and without NUMA affinity — and
//! writes a loadable `trace.json` (Chrome Trace Event Format) for the
//! affinity run: open it in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Both renderings come from the *same* `ObsEvent` stream through the
//! unified `nosv::obs` sink API; an identically-built sink attached to a
//! live `nosv::Runtime` (`RuntimeBuilder::sink`) produces the same output.
//!
//! Run with: `cargo run --release --example trace_dump`

use mpisim::{run_distributed_observed, DistConfig, DistStrategy};
use nosv_repro::simnode::{ascii_timeline, chrome_trace_json, MemorySink, SimOptions};

fn main() {
    let cfg = DistConfig {
        nodes: 8,
        scale: 0.12,
        sim: SimOptions::default(),
    };
    for (label, strategy) in [
        ("w/o affinity", DistStrategy::Nosv),
        ("with affinity", DistStrategy::NosvAffinity),
    ] {
        let sink = MemorySink::new();
        let o = run_distributed_observed(strategy, &cfg, Some(&sink));
        let events = sink.take_sorted();
        println!(
            "\n== {label}: {} events, HPCCG remote accesses {:.1}% ==",
            events.len(),
            o.hpccg_remote_fraction * 100.0
        );
        println!("   rows = 48 cores (socket 0 then 1); A/B = HPCCG ranks, C = NBody");
        println!("   uppercase = local to its data's socket, lowercase = remote\n");
        print!("{}", ascii_timeline(&events, 48, 110));

        if strategy == DistStrategy::NosvAffinity {
            let json = chrome_trace_json(&events);
            match std::fs::write("trace.json", &json) {
                Ok(()) => println!(
                    "\nwrote trace.json ({} bytes) — load it in chrome://tracing or ui.perfetto.dev",
                    json.len()
                ),
                Err(e) => eprintln!("\nfailed to write trace.json: {e}"),
            }
        }
    }
}
