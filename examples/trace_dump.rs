//! Dumps a Fig. 10-style per-core execution trace of a co-executed run on
//! the simulated dual-socket node, with and without NUMA affinity.
//!
//! Run with: `cargo run --release --example trace_dump`

use mpisim::{run_distributed, DistConfig, DistStrategy};
use simnode::SimOptions;

fn main() {
    let cfg = DistConfig {
        nodes: 8,
        scale: 0.12,
        sim: SimOptions {
            record_trace: true,
            ..Default::default()
        },
    };
    for (label, strategy) in [
        ("w/o affinity", DistStrategy::Nosv),
        ("with affinity", DistStrategy::NosvAffinity),
    ] {
        let o = run_distributed(strategy, &cfg);
        let sim = o.sim.expect("co-scheduled run");
        let trace = sim.trace.expect("requested");
        println!(
            "\n== {label}: {} task segments, HPCCG remote accesses {:.1}% ==",
            trace.segments.len(),
            o.hpccg_remote_fraction * 100.0
        );
        println!("   rows = 48 cores (socket 0 then 1); A/B = HPCCG ranks, C = NBody");
        println!("   uppercase = local to its data's socket, lowercase = remote\n");
        print!("{}", trace.render_ascii(48, 110));
    }
}
